package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "jsoncontract",
		Doc: "topomapd responses must be byte-deterministic (the service's " +
			"result cache and the paper's cross-run comparisons key on exact " +
			"bytes): every type reachable from internal/service response " +
			"marshaling must avoid interface-typed fields (map[K]any and " +
			"friends), time.Time, and float fields without a fixed formatter " +
			"(a ,string tag or a json.Marshaler); and every HTTP handler must " +
			"propagate context.Context — no context.Background/TODO inside " +
			"handlers, and handlers reaching context-aware code must call " +
			"r.Context()",
		RunModule: runJSONContract,
	})
}

func runJSONContract(p *ModulePass) {
	var scoped []*Package
	for _, pkg := range p.Pkgs {
		if strings.Contains(pkg.Path, "internal/service") {
			scoped = append(scoped, pkg)
		}
	}
	if len(scoped) == 0 {
		return
	}
	c := &jsonChecker{pass: p, visited: map[types.Type]bool{}, findings: map[jsonFinding]*fieldList{}}
	for _, pkg := range scoped {
		c.collectRoots(pkg)
	}
	for _, pkg := range scoped {
		c.resolveSinkCalls(pkg)
	}
	for _, root := range c.roots {
		c.walkType(root.typ, root.pos)
	}
	c.reportFindings()
	for _, pkg := range scoped {
		checkHandlers(p, pkg)
	}
}

// jsonRoot is one concrete type observed flowing into a marshal call.
type jsonRoot struct {
	typ types.Type
	pos token.Pos // the marshal (or sink-call) argument, for unnamed types
}

// jsonSink is a function whose interface-typed parameter is forwarded to
// a marshal call (e.g. writeJSON(w, v any)); argument types at its call
// sites are marshal roots. One level of forwarding is traced.
type jsonSink struct {
	fn       *types.Func
	paramIdx int
}

type jsonFinding struct {
	obj  *types.TypeName // named type owning the offending fields (nil → anonymous)
	kind string
}

type fieldList struct {
	pos    token.Pos
	fields []string
}

type jsonChecker struct {
	pass     *ModulePass
	roots    []jsonRoot
	sinks    []jsonSink
	visited  map[types.Type]bool
	findings map[jsonFinding]*fieldList
}

// collectRoots finds encoding/json marshal calls in pkg, recording the
// static argument type as a root — or, when the argument is an
// interface-typed parameter of the enclosing function, recording that
// function as a sink so its callers' argument types become roots.
func (c *jsonChecker) collectRoots(pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fobj, _ := info.Defs[fd.Name].(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg := marshalArg(info, call)
				if arg == nil {
					return true
				}
				c.addRootOrSink(info, fobj, arg)
				return true
			})
		}
	}
}

// marshalArg returns the value expression marshaled by call, if call is
// json.Marshal/MarshalIndent or (*json.Encoder).Encode.
func marshalArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	callee, kind := resolveCallee(info, call)
	if kind != callStatic || callee.Pkg() == nil || callee.Pkg().Path() != "encoding/json" {
		return nil
	}
	switch callee.Name() {
	case "Marshal", "MarshalIndent", "Encode":
		if len(call.Args) > 0 {
			return call.Args[0]
		}
	}
	return nil
}

func (c *jsonChecker) addRootOrSink(info *types.Info, enclosing *types.Func, arg ast.Expr) {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if !types.IsInterface(tv.Type.Underlying()) {
		c.roots = append(c.roots, jsonRoot{typ: tv.Type, pos: arg.Pos()})
		return
	}
	// Interface-typed argument: if it is a parameter of the enclosing
	// function, the function is a forwarding sink; otherwise the dynamic
	// type is unknowable statically and the site is left to reviewers.
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok || enclosing == nil {
		return
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	sig := enclosing.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			c.sinks = append(c.sinks, jsonSink{fn: enclosing.Origin(), paramIdx: i})
		}
	}
}

// resolveSinkCalls turns arguments at sink call sites into roots.
func (c *jsonChecker) resolveSinkCalls(pkg *Package) {
	if len(c.sinks) == 0 {
		return
	}
	info := pkg.Info
	byFn := map[*types.Func][]int{}
	for _, s := range c.sinks {
		byFn[s.fn] = append(byFn[s.fn], s.paramIdx)
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, kind := resolveCallee(info, call)
			if kind != callStatic {
				return true
			}
			idxs, ok := byFn[callee.Origin()]
			if !ok {
				return true
			}
			for _, i := range idxs {
				if i < len(call.Args) {
					if tv, ok := info.Types[call.Args[i]]; ok && tv.Type != nil && !types.IsInterface(tv.Type.Underlying()) {
						c.roots = append(c.roots, jsonRoot{typ: tv.Type, pos: call.Args[i].Pos()})
					}
				}
			}
			return true
		})
	}
}

// walkType recursively checks t's JSON shape. rootPos anchors findings on
// unnamed types (the marshal argument); named types report at their
// declaration so one //lint:ignore covers every use.
func (c *jsonChecker) walkType(t types.Type, rootPos token.Pos) {
	if c.visited[t] {
		return
	}
	c.visited[t] = true
	var owner *types.TypeName
	pos := rootPos
	if named, ok := t.(*types.Named); ok {
		owner = named.Obj()
		pos = owner.Pos()
		if isTimeTime(named) {
			c.record(owner, pos, "time.Time", "")
			return
		}
		if hasMarshalJSON(t) {
			return // custom marshaler: the type controls its own bytes
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		c.walkType(u.Elem(), rootPos)
	case *types.Slice:
		c.walkType(u.Elem(), rootPos)
	case *types.Array:
		c.walkType(u.Elem(), rootPos)
	case *types.Map:
		if types.IsInterface(u.Elem().Underlying()) {
			c.record(owner, pos, "map with interface-typed values (encoded bytes depend on dynamic types)", "")
		} else {
			c.walkType(u.Elem(), rootPos)
		}
	case *types.Interface:
		c.record(owner, pos, "interface-typed value (encoded bytes depend on the dynamic type)", "")
	case *types.Struct:
		c.walkStruct(owner, pos, u, rootPos)
	}
}

func (c *jsonChecker) walkStruct(owner *types.TypeName, pos token.Pos, st *types.Struct, rootPos token.Pos) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if tag == "-" || (!f.Exported() && !f.Embedded()) {
			continue
		}
		ft := f.Type()
		switch {
		case types.IsInterface(ft.Underlying()):
			c.record(owner, pos, "interface-typed field", f.Name())
		case isTimeType(ft):
			c.record(owner, pos, "time.Time field", f.Name())
		case isMapWithAnyValues(ft):
			c.record(owner, pos, "map[K]any field", f.Name())
		case isBareFloat(ft) && !tagHasString(tag):
			c.record(owner, pos, "float field without a fixed formatter (add a `,string` tag or a json.Marshaler)", f.Name())
		default:
			c.walkType(ft, rootPos)
		}
	}
}

// record registers one finding, aggregating fields per (type, kind) so a
// type with eight float fields draws one diagnostic, not eight.
func (c *jsonChecker) record(owner *types.TypeName, pos token.Pos, kind, field string) {
	k := jsonFinding{obj: owner, kind: kind}
	fl := c.findings[k]
	if fl == nil {
		fl = &fieldList{pos: pos}
		c.findings[k] = fl
	}
	if field != "" {
		fl.fields = append(fl.fields, field)
	}
}

func (c *jsonChecker) reportFindings() {
	keys := make([]jsonFinding, 0, len(c.findings))
	for k := range c.findings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := c.findings[keys[i]], c.findings[keys[j]]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return keys[i].kind < keys[j].kind
	})
	for _, k := range keys {
		fl := c.findings[k]
		name := "marshaled value"
		if k.obj != nil {
			name = "response type " + k.obj.Name()
		}
		msg := name + " is not byte-deterministic: " + k.kind
		if len(fl.fields) > 0 {
			sort.Strings(fl.fields)
			msg += " (" + strings.Join(dedupStrings(fl.fields), ", ") + ")"
		}
		c.pass.Reportf(fl.pos, "%s", msg)
	}
}

func dedupStrings(ss []string) []string {
	out := ss[:0]
	var last string
	for i, s := range ss {
		if i == 0 || s != last {
			out = append(out, s)
		}
		last = s
	}
	return out
}

func tagHasString(tag string) bool {
	if i := strings.IndexByte(tag, ','); i >= 0 {
		for _, opt := range strings.Split(tag[i+1:], ",") {
			if opt == "string" {
				return true
			}
		}
	}
	return false
}

func isBareFloat(t types.Type) bool {
	if hasMarshalJSON(t) {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isMapWithAnyValues(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	return ok && types.IsInterface(m.Elem().Underlying())
}

// isTimeTime matches time.Time by package and name so fixture stubs of
// the real package also match.
func isTimeTime(named *types.Named) bool {
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Name() == "time"
}

func isTimeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && isTimeTime(named)
}

// hasMarshalJSON reports whether t (or *t) has a MarshalJSON() ([]byte,
// error) method — a fixed formatter under the analyzer's contract.
func hasMarshalJSON(t types.Type) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		if m, _, _ := types.LookupFieldOrMethod(tt, true, nil, "MarshalJSON"); m != nil {
			if fn, ok := m.(*types.Func); ok {
				sig := fn.Type().(*types.Signature)
				if sig.Params().Len() == 0 && sig.Results().Len() == 2 {
					return true
				}
			}
		}
	}
	return false
}

// --- handler context rules ---

// checkHandlers enforces context propagation: a handler-shaped function
// (http.ResponseWriter + *http.Request parameters) must not construct a
// fresh context via context.Background/TODO, and if it transitively
// reaches a function taking context.Context it must derive that context
// from r.Context() in its own body.
func checkHandlers(p *ModulePass, pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			reqParam := handlerRequestParam(info, fd)
			if reqParam == nil {
				continue
			}
			callsReqContext := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == reqParam {
						callsReqContext = true
					}
				}
				callee, kind := resolveCallee(info, call)
				if kind == callStatic && callee.Pkg() != nil && callee.Pkg().Path() == "context" {
					switch callee.Name() {
					case "Background", "TODO":
						p.Reportf(call.Pos(), "handler %s constructs context.%s instead of propagating the request context; use r.Context() so client disconnects cancel work", fd.Name.Name, callee.Name())
					}
				}
				return true
			})
			if callsReqContext {
				continue
			}
			if target := reachesContextAware(p, pkg, fd); target != nil {
				p.Reportf(fd.Pos(), "handler %s reaches context-aware %s but never calls r.Context(); request cancellation is not propagated", fd.Name.Name, funcName(target))
			}
		}
	}
}

// handlerRequestParam returns fd's *http.Request parameter if fd is
// handler-shaped (also has an http.ResponseWriter parameter), else nil.
// Matching is by package name + type name so fixture stubs qualify.
func handlerRequestParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	var hasWriter bool
	var req *types.Var
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			if v == nil {
				continue
			}
			if isPkgNamed(v.Type(), "http", "ResponseWriter") {
				hasWriter = true
			}
			if ptr, ok := v.Type().(*types.Pointer); ok && isPkgNamed(ptr.Elem(), "http", "Request") {
				req = v
			}
		}
	}
	if hasWriter && req != nil {
		return req
	}
	return nil
}

func isPkgNamed(t types.Type, pkgName, typeName string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// reachesContextAware walks static call edges from fd and returns the
// first module function with a context.Context parameter, or nil.
func reachesContextAware(p *ModulePass, pkg *Package, fd *ast.FuncDecl) *types.Func {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	start := p.graph.nodes[obj]
	if start == nil {
		return nil
	}
	seen := map[*funcNode]bool{start: true}
	queue := []*funcNode{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, callee := range n.callees {
			if takesContext(callee) && p.graph.nodes[callee] != nil {
				return callee
			}
			cn := p.graph.nodes[callee]
			if cn != nil && !seen[cn] {
				seen[cn] = true
				queue = append(queue, cn)
			}
		}
	}
	return nil
}

func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isPkgNamed(sig.Params().At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}
