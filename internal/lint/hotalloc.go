package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "hotalloc",
		Doc: "flags allocating constructs (make/new/append growth, slice, map " +
			"and &-composite literals, capturing closures, go statements, " +
			"interface boxing, string building, fmt and other known-allocating " +
			"stdlib calls) plus statically unresolvable calls in every function " +
			"reachable from a //lint:hotpath-annotated root — the static mirror " +
			"of the zero-alloc steady-state benchmarks; allocations inside " +
			"panic(...) arguments are exempt (failure paths never run at steady " +
			"state)",
		RunModule: runHotalloc,
	})
}

// allocPkgs are stdlib packages whose exported functions allocate as a
// matter of course; a call into one from a hot path is reported even
// though the callee's body is not analyzed.
var allocPkgs = map[string]bool{
	"fmt":           true,
	"errors":        true,
	"strings":       true,
	"strconv":       true,
	"bytes":         true,
	"encoding/json": true,
	"log":           true,
	"regexp":        true,
	"reflect":       true,
}

func runHotalloc(p *ModulePass) {
	g := p.graph
	roots := g.roots()
	if len(roots) == 0 {
		return
	}
	origin := g.reachableFrom(roots)
	for n, root := range origin {
		where := funcName(n.obj)
		via := ""
		if root != n {
			via = " (reachable from //lint:hotpath root " + funcName(root.obj) + ")"
		} else {
			via = " (a //lint:hotpath root)"
		}
		report := func(pos token.Pos, what string) {
			p.Reportf(pos, "%s in hot-path function %s%s", what, where, via)
		}
		if n.decl.Body != nil {
			scanAllocs(n.pkg.Info, n.decl, report)
		}
		for _, pos := range n.dynamics {
			report(pos, "call through a function value or interface method cannot be verified allocation-free")
		}
	}
}

// scanAllocs walks fd's body reporting each allocating construct.
// Subtrees rooted at panic(...) arguments are skipped: panics abort the
// simulation, so their formatting cost never appears at steady state.
func scanAllocs(info *types.Info, fd *ast.FuncDecl, report func(token.Pos, string)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine (allocates)")
		case *ast.FuncLit:
			if capturesLocals(info, fd, n) {
				report(n.Pos(), "closure capturing local variables allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite-literal escapes to the heap")
					// The literal itself is part of this finding.
					for _, el := range ast.Unparen(n.X).(*ast.CompositeLit).Elts {
						ast.Inspect(el, walk)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) && !isConstExpr(info, n) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			return walkCall(info, n, report, walk)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// walkCall classifies one call expression for scanAllocs, returning
// false when the walker should not descend into the call's children.
func walkCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string), walk func(ast.Node) bool) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "panic":
				return false // failure path: skip the whole argument tree
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
			return true
		}
	}
	// Conversions: boxing and string<->slice copies allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			reportConversion(info, tv.Type, call, report)
		}
		return true
	}
	// fmt and friends.
	if pkgPath, fn := pkgQualifiedCall(info, call); allocPkgs[pkgPath] {
		report(call.Pos(), "call to "+pkgPath+"."+fn+" allocates")
	}
	// Boxing at the call boundary: concrete arguments passed to
	// interface-typed parameters, and the argument slice of a variadic
	// call.
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			reportCallBoxing(info, sig, call, report)
		}
	}
	return true
}

func reportConversion(info *types.Info, to types.Type, call *ast.CallExpr, report func(token.Pos, string)) {
	argTV, ok := info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return
	}
	if types.IsInterface(to.Underlying()) && !types.IsInterface(argTV.Type.Underlying()) {
		report(call.Pos(), "conversion to interface boxes its operand")
		return
	}
	toB, _ := to.Underlying().(*types.Basic)
	if toB != nil && toB.Info()&types.IsString != 0 {
		if _, fromSlice := argTV.Type.Underlying().(*types.Slice); fromSlice {
			report(call.Pos(), "[]byte/[]rune to string conversion copies")
		}
		return
	}
	if _, toSlice := to.Underlying().(*types.Slice); toSlice && isStringExpr(info, call.Args[0]) {
		report(call.Pos(), "string to slice conversion copies")
	}
}

// reportCallBoxing flags concrete arguments bound to interface-typed
// parameters (implicit boxing) and non-empty variadic argument lists
// (the ...T slice is allocated at the call site).
func reportCallBoxing(info *types.Info, sig *types.Signature, call *ast.CallExpr, report func(token.Pos, string)) {
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no new allocation
			}
			if sl, ok := params.At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
			if i == np-1 {
				report(arg.Pos(), "variadic call allocates its argument slice")
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		if !types.IsInterface(atv.Type.Underlying()) {
			report(arg.Pos(), "argument boxed into interface parameter")
		}
	}
}

// capturesLocals reports whether lit references a variable declared in
// the enclosing function fd but outside lit itself — the condition under
// which the closure needs a heap-allocated environment. Closures over
// package-level state compile to static functions and are exempt.
func capturesLocals(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captured = true
		}
		return true
	})
	return captured
}

func isStringExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	return ok && tv.Value != nil
}
