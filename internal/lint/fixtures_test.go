package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the fixture golden files")

// fixtureCases pairs each analyzer with a violating ("bad") and a
// conforming ("good") fixture package. The synthetic import path
// controls path-scoped analyzers: determinism and seededrand only
// consider algorithm packages, so their fixtures pose as one.
var fixtureCases = []struct {
	analyzer string
	dir      string // under testdata/
	path     string // synthetic import path for the fixture package
	clean    bool   // expect zero diagnostics
}{
	{"determinism", "determinism/bad", "repro/internal/core/fixture", false},
	{"determinism", "determinism/good", "repro/internal/core/fixture", true},
	{"seededrand", "seededrand/bad", "repro/internal/core/fixture", false},
	{"seededrand", "seededrand/good", "repro/internal/core/fixture", true},
	{"errcheck", "errcheck/bad", "repro/internal/fixture", false},
	{"errcheck", "errcheck/good", "repro/internal/fixture", true},
	{"floatcmp", "floatcmp/bad", "repro/internal/fixture", false},
	{"floatcmp", "floatcmp/good", "repro/internal/fixture", true},
	{"floatcmp", "suppress/bad", "repro/internal/fixture", false},
	{"floatcmp", "suppress/placement", "repro/internal/fixture", true},
	{"floatcmp", "suppress/unused", "repro/internal/fixture", false},
	{"hotalloc", "hotalloc/bad", "repro/internal/fixture", false},
	{"hotalloc", "hotalloc/good", "repro/internal/fixture", true},
	{"parallelpurity", "parallelpurity/bad", "repro/fixture/internal", false},
	{"parallelpurity", "parallelpurity/good", "repro/fixture/internal", true},
	{"jsoncontract", "jsoncontract/bad", "repro/internal/service/fixture", false},
	{"jsoncontract", "jsoncontract/good", "repro/internal/service/fixture", true},
	{"leakcheck", "leakcheck/bad", "repro/internal/netsim/fixture", false},
	{"leakcheck", "leakcheck/good", "repro/internal/netsim/fixture", true},
}

func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			a := lint.Lookup(tc.analyzer)
			if a == nil {
				t.Fatalf("analyzer %q not registered", tc.analyzer)
			}
			pkg, err := lint.LoadDir(filepath.Join("testdata", tc.dir), tc.path)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			if pkg == nil {
				t.Fatalf("fixture %s has no Go files", tc.dir)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("fixture does not type-check: %v", terr)
			}
			var lines []string
			for _, d := range lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a}) {
				lines = append(lines, fmt.Sprintf("%s:%d:%d: [%s] %s",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
			}
			got := strings.Join(lines, "\n")
			if got != "" {
				got += "\n"
			}
			if tc.clean {
				if got != "" {
					t.Fatalf("expected a clean fixture, got diagnostics:\n%s", got)
				}
				return
			}
			if got == "" {
				t.Fatalf("expected diagnostics on violating fixture %s, got none", tc.dir)
			}
			golden := filepath.Join("testdata", tc.dir+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestRegistry checks the registry surface the CLI depends on.
func TestRegistry(t *testing.T) {
	want := []string{"determinism", "errcheck", "floatcmp", "hotalloc",
		"jsoncontract", "leakcheck", "parallelpurity", "seededrand"}
	var got []string
	for _, a := range lint.Analyzers() {
		got = append(got, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("registered analyzers = %v, want %v", got, want)
	}
	if lint.Lookup("determinism") == nil || lint.Lookup("nope") != nil {
		t.Error("Lookup misbehaves")
	}
}
