// Package lint is a small pluggable static-analysis framework built
// entirely on the standard library (go/parser, go/ast, go/types,
// go/token). It exists to mechanically enforce the invariants the
// paper reproduction depends on: bit-for-bit deterministic mapping
// strategies, seed-injected randomness, honest error handling, and
// epsilon-aware floating-point comparisons.
//
// Analyzers register themselves in an init function via Register; the
// cmd/topolint CLI and the in-repo self-check test both run every
// registered analyzer over every package of the module. Individual
// diagnostics can be suppressed with a justified comment:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"sync"
)

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position // file, line, column
	Analyzer string         // name of the analyzer that produced it
	Message  string
}

// String renders the diagnostic in the canonical
// "file:line:col: [analyzer] message" form used by the CLI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Per-package analyzers set Run, which is
// invoked once per package; cross-package analyzers (those needing the
// module call graph or whole-module type reachability) set RunModule,
// which is invoked once over the full package set. Exactly one of the
// two should be set.
type Analyzer struct {
	Name      string // short lower-case identifier, e.g. "determinism"
	Doc       string // one-paragraph description of the enforced invariant
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one (analyzer, package set) unit of work for
// cross-package analyzers, along with the shared intra-module call graph
// (built once per Run and reused by every module analyzer).
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Fset     *token.FileSet

	graph *callGraph
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// registry of analyzers, keyed by name.
var (
	regMu    sync.Mutex
	registry = map[string]*Analyzer{}
)

// Register adds a to the global registry. It panics on duplicate or
// empty names so misconfiguration fails loudly at init time.
func Register(a *Analyzer) {
	regMu.Lock()
	defer regMu.Unlock()
	if a.Name == "" || (a.Run == nil && a.RunModule == nil) {
		panic("lint: Register: analyzer needs a name and a Run or RunModule function")
	}
	if _, dup := registry[a.Name]; dup {
		panic("lint: Register: duplicate analyzer " + a.Name)
	}
	registry[a.Name] = a
}

// Analyzers returns every registered analyzer sorted by name.
func Analyzers() []*Analyzer {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}

// Run executes the given analyzers over the given packages and returns
// all findings that are not covered by a //lint:ignore directive,
// sorted by file, line, column, then analyzer name. Malformed ignore
// directives (missing analyzer name or reason) and directives that
// suppress nothing are reported as findings of the pseudo-analyzer
// "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	if len(pkgs) == 0 {
		return nil
	}
	var diags []Diagnostic
	var graph *callGraph
	for _, a := range analyzers {
		if a.RunModule != nil && graph == nil {
			graph = buildCallGraph(pkgs)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset, diags: &diags}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs, Fset: pkgs[0].Fset, graph: graph, diags: &diags}
		a.RunModule(mp)
	}
	if graph != nil {
		for _, pos := range graph.misplacedHotpath {
			diags = append(diags, Diagnostic{
				Pos:      pkgs[0].Fset.Position(pos),
				Analyzer: "lint",
				Message:  "//lint:hotpath is not attached to a function declaration's doc comment and marks nothing",
			})
		}
	}
	// Directives may name any registered analyzer (or one explicitly in
	// this run); unused-ignore reporting only considers analyzers that
	// actually ran, and "all" directives only full runs.
	run := make(map[string]bool, len(analyzers))
	valid := map[string]bool{}
	for _, a := range analyzers {
		run[a.Name] = true
		valid[a.Name] = true
	}
	for _, a := range Analyzers() {
		valid[a.Name] = true
	}
	fullRun := true
	for _, a := range Analyzers() {
		if !run[a.Name] {
			fullRun = false
			break
		}
	}
	var kept []Diagnostic
	sup := newSuppressions(pkgs, valid)
	kept = append(kept, sup.malformed...)
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.unused(run, fullRun)...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// walkFiles applies fn to every file of the pass's package. The loader
// only loads non-test files, so analyzers need no test-file filtering
// of their own.
func (p *Pass) walkFiles(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
