// Package lint is a small pluggable static-analysis framework built
// entirely on the standard library (go/parser, go/ast, go/types,
// go/token). It exists to mechanically enforce the invariants the
// paper reproduction depends on: bit-for-bit deterministic mapping
// strategies, seed-injected randomness, honest error handling, and
// epsilon-aware floating-point comparisons.
//
// Analyzers register themselves in an init function via Register; the
// cmd/topolint CLI and the in-repo self-check test both run every
// registered analyzer over every package of the module. Individual
// diagnostics can be suppressed with a justified comment:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"sync"
)

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position // file, line, column
	Analyzer string         // name of the analyzer that produced it
	Message  string
}

// String renders the diagnostic in the canonical
// "file:line:col: [analyzer] message" form used by the CLI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects the package held by the
// Pass and reports findings through it.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "determinism"
	Doc  string // one-paragraph description of the enforced invariant
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// registry of analyzers, keyed by name.
var (
	regMu    sync.Mutex
	registry = map[string]*Analyzer{}
)

// Register adds a to the global registry. It panics on duplicate or
// empty names so misconfiguration fails loudly at init time.
func Register(a *Analyzer) {
	regMu.Lock()
	defer regMu.Unlock()
	if a.Name == "" || a.Run == nil {
		panic("lint: Register: analyzer needs a name and a Run function")
	}
	if _, dup := registry[a.Name]; dup {
		panic("lint: Register: duplicate analyzer " + a.Name)
	}
	registry[a.Name] = a
}

// Analyzers returns every registered analyzer sorted by name.
func Analyzers() []*Analyzer {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}

// Run executes the given analyzers over the given packages and returns
// all findings that are not covered by a //lint:ignore directive,
// sorted by file, line, column, then analyzer name. Malformed ignore
// directives (missing analyzer name or reason) are reported as
// findings of the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset, diags: &diags}
			a.Run(pass)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var kept []Diagnostic
	sup := newSuppressions(pkgs, known)
	kept = append(kept, sup.malformed...)
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// walkFiles applies fn to every file of the pass's package. The loader
// only loads non-test files, so analyzers need no test-file filtering
// of their own.
func (p *Pass) walkFiles(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
