// Package fixture exercises the jsoncontract analyzer: a response type
// with every nondeterministic field kind, reached through a forwarding
// sink, plus a handler that fabricates its own context.
package fixture

import (
	"context"
	"encoding/json"
	"time"

	"repro/internal/service/fixture/http"
)

// report is the marshaled response type; all four field kinds violate
// byte-determinism.
type report struct {
	Name    string         `json:"name"`
	Took    time.Time      `json:"took"`
	Load    float64        `json:"load"`
	Peak    float64        `json:"peak"`
	Extra   map[string]any `json:"extra"`
	Payload interface{}    `json:"payload"`
}

// writeJSON is a forwarding sink: its interface-typed v parameter flows
// into json.Marshal, so argument types at its call sites are roots.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	_, _ = w.Write(data)
}

// handleReport fabricates a fresh context instead of propagating the
// request's, and reaches context-aware code without calling r.Context().
func handleReport(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	writeJSON(w, buildReport(ctx))
}

func buildReport(ctx context.Context) report {
	_ = ctx.Err()
	return report{Name: "fixture", Took: time.Unix(0, 0)}
}
