// Package http stubs the two net/http types the jsoncontract analyzer
// matches by package and type name, so the fixtures type-check without
// pulling the real net/http dependency tree through the source importer.
package http

import "context"

type ResponseWriter interface {
	Write(p []byte) (int, error)
}

type Request struct {
	ctx context.Context
}

func (r *Request) Context() context.Context { return r.ctx }
