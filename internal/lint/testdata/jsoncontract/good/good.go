// Package fixture is the conforming jsoncontract counterpart: fixed
// float formatting via a ,string tag and a json.Marshaler, sorted-key
// maps with concrete value types, a handler that propagates r.Context(),
// and one justified suppression for a frozen wire format.
package fixture

import (
	"context"
	"encoding/json"
	"strconv"

	"repro/internal/service/fixture/http"
)

// stats is the marshaled response type.
type stats struct {
	Jobs   int            `json:"jobs"`
	Rates  []fixedFloat   `json:"rates"`
	ByNode map[string]int `json:"by_node"`
	Score  float64        `json:"score,string"`
	Old    legacy         `json:"old"`
}

// fixedFloat renders with a fixed formatter, so its bytes never depend
// on encoding/json's shortest-representation float path.
type fixedFloat float64

func (f fixedFloat) MarshalJSON() ([]byte, error) {
	return strconv.AppendFloat(nil, float64(f), 'f', 6, 64), nil
}

// legacy predates the formatter rule; its wire format is frozen by the
// v0 clients, so the violation is documented and suppressed.
//
//lint:ignore jsoncontract fixture: frozen v0 wire format, bytes pinned by golden tests
type legacy struct {
	Mean float64 `json:"mean"`
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	_, _ = w.Write(data)
}

// handleStats derives all downstream work from the request context.
func handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, collect(r.Context()))
}

func collect(ctx context.Context) stats {
	_ = ctx.Err()
	return stats{Jobs: 1}
}
