// Package fixture exercises the leakcheck analyzer: goroutines with no
// join or cancellation protocol, spawned directly and through a
// same-package callee.
package fixture

import "time"

// poll spawns an unbounded polling loop nothing can stop.
func poll() {
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// spin launches a same-package function whose body has no termination
// signal either.
func spin() {
	go loop()
}

func loop() {
	for i := 0; ; i++ {
		_ = i
	}
}
