// Package fixture is the conforming leakcheck counterpart: every
// goroutine is joinable (WaitGroup), drains a closable channel, hands a
// semaphore slot back, or polls its context — plus one justified
// process-lifetime exception.
package fixture

import (
	"context"
	"sync"
)

// workers is the canonical Add-before-go + Done pattern.
func workers(ctx context.Context, n int) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ctx.Done()
		}()
	}
	return &wg
}

// drain exits when the channel is closed.
func drain(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// limited hands its semaphore slot back when finished.
func limited(sem chan struct{}) {
	go func() {
		sem <- struct{}{}
		<-sem
	}()
}

// watcher runs a ctx-cancellable loop.
func watcher(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			_ = ctx
		}
	}()
}

// telemetry is a process-lifetime goroutine by design; the exemption is
// documented.
func telemetry(samples chan<- int) {
	//lint:ignore leakcheck fixture: process-lifetime telemetry loop, dies with the process
	go background()
}

func background() {
	for i := 0; ; i++ {
		_ = i
	}
}
