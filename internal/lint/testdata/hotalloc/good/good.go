// Package fixture is the conforming hotalloc counterpart: the hot path
// only moves stack values, allocation on the failure path is exempt, a
// justified growth site is suppressed, and cold helpers may allocate
// freely.
package fixture

import "fmt"

type pair struct{ a, b int }

// hot advances a ring index without allocating.
//
//lint:hotpath fixture: steady-state dispatch root
func hot(ring []int, idx int, cb func(int)) int {
	x := step(ring, idx)
	if x < 0 {
		panic(fmt.Sprintf("bad value at %d", idx)) // failure path: exempt
	}
	cb(x) // call through a parameter: checked at the creation site
	return x
}

func step(ring []int, i int) int {
	j := i + 1
	if j == len(ring) {
		j = 0
	}
	p := pair{a: ring[j], b: j} // struct value literal: stack-allocated
	return p.a + warm(ring, p.b)
}

// warm grows a pre-sized buffer once at startup; the growth is justified
// and suppressed.
func warm(buf []int, v int) int {
	//lint:ignore hotalloc fixture: one-time warm-up growth, amortized to zero
	buf = append(buf, v)
	return buf[len(buf)-1]
}

// cold is not reachable from any hotpath root, so its allocations are of
// no interest to the analyzer.
func cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
