// Package fixture exercises the hotalloc analyzer: hot is a
// //lint:hotpath root, and the helpers it reaches allocate in every way
// the analyzer knows about.
package fixture

import "fmt"

type doer interface{ do() int }

// hot is the fixture's event-dispatch loop.
//
//lint:hotpath fixture: steady-state dispatch root
func hot(vals []int, d doer) int {
	total := 0
	for _, v := range vals {
		total += process(v)
	}
	total += d.do()
	return total
}

// process is reachable from hot and allocates.
func process(v int) int {
	buf := make([]int, v)
	buf = append(buf, v)
	s := fmt.Sprint(v)
	f := spawn(v)
	return len(buf) + len(s) + f()
}

// spawn returns a capturing closure — a heap-allocated environment.
func spawn(v int) func() int {
	return func() int { return v }
}

//lint:hotpath this directive is attached to a var, not a function
var sink int
