// Package fixture shows the error-handling forms errcheck accepts:
// checked errors, terminal printing, infallible in-memory writers, and
// deferred cleanup.
package fixture

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// Cleanup propagates the error.
func Cleanup(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("fixture: %w", err)
	}
	return nil
}

// Render writes into infallible in-memory writers; fmt.Fprintf to a
// strings.Builder or bytes.Buffer cannot fail.
func Render() string {
	var b strings.Builder
	var buf bytes.Buffer
	fmt.Fprintf(&b, "x=%d\n", 1)
	buf.WriteString("y")
	b.WriteByte('\n')
	return b.String() + buf.String()
}

// Announce prints to the terminal, which is fire-and-forget by
// convention; deferred Close has no error path to return through.
func Announce(f *os.File) {
	defer f.Close()
	fmt.Println("starting")
	fmt.Fprintf(os.Stderr, "progress\n")
}
