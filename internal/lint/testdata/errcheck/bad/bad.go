// Package fixture violates the error-handling invariant: errors are
// dropped on the floor or explicitly blanked.
package fixture

import (
	"fmt"
	"os"
)

// Cleanup discards os.Remove's error entirely.
func Cleanup(path string) {
	os.Remove(path)
}

// CloseQuietly blanks the Close error, hiding lost writes.
func CloseQuietly(f *os.File) {
	_ = f.Close()
}

// Report writes to a fallible writer without checking.
func Report(f *os.File) {
	fmt.Fprintf(f, "done\n")
}
