// Package fixture violates the seeded-randomness invariant: it draws
// from math/rand's process-global generator and reads the wall clock
// inside (synthetic) algorithm code.
package fixture

import (
	"math/rand"
	"time"
)

// Shuffle uses the global generator, so results vary run to run.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Pick draws from the global generator.
func Pick(n int) int {
	return rand.Intn(n)
}

// Stamp lets timing leak into algorithm state.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed also consults the clock.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}
