// Package fixture shows seed-injected randomness: every draw flows
// through a *rand.Rand built from an explicit seed.
package fixture

import "math/rand"

// Shuffle permutes xs reproducibly for a given seed.
func Shuffle(xs []int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Pick draws from an injected generator.
func Pick(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}
