// Package fixture pins both sanctioned //lint:ignore placements: a
// trailing directive on the offending line, and a directive on its own
// line with a blank line between it and the statement it justifies (the
// placement the line-of-comment-group matching used to miss).
package fixture

// eqTrailing suppresses with a same-line trailing directive.
func eqTrailing(a, b float64) bool {
	return a == b //lint:ignore floatcmp fixture: exact comparison is the point here
}

// eqSeparated suppresses with a directive separated from the statement
// by a blank line.
func eqSeparated(a, b float64) bool {
	//lint:ignore floatcmp fixture: exact comparison is the point here

	return a == b
}
