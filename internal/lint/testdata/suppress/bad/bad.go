// Package fixture exercises malformed //lint:ignore directives: a
// directive without a reason and one naming an unknown analyzer are
// themselves findings, and neither suppresses the diagnostic below it.
package fixture

// MissingReason has a directive with no written justification.
func MissingReason(v float64) bool {
	//lint:ignore floatcmp
	return v == 0
}

// UnknownAnalyzer names an analyzer that does not exist.
func UnknownAnalyzer(v float64) bool {
	//lint:ignore nosuchanalyzer the name above is wrong, so this does not suppress
	return v == 1
}
