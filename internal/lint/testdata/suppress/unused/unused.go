// Package fixture pins the unused-ignore diagnostic: one directive that
// suppresses a real finding, and one left behind after the violation it
// justified was fixed.
package fixture

// eq still violates floatcmp; its directive is used.
func eq(a, b float64) bool {
	//lint:ignore floatcmp fixture: exact comparison is the point here
	return a == b
}

// abs no longer compares floats for equality, so this directive
// suppresses nothing and must be reported.
func abs(x float64) float64 {
	//lint:ignore floatcmp fixture: stale — the equality comparison is gone
	if x < 0 {
		return -x
	}
	return x
}
