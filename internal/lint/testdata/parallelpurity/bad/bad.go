// Package fixture exercises the parallelpurity analyzer with every
// impurity it detects: captured-variable writes, fixed-slot slice
// writes, captured and global rand sources, the wall clock, and
// captured struct-field writes.
package fixture

import (
	"math/rand"
	"time"

	"repro/fixture/internal/parallel"
)

// sumBad accumulates into a captured variable across chunks.
func sumBad(xs []float64) float64 {
	var sum float64
	parallel.For(len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
	})
	return sum
}

// countBad increments a captured counter.
func countBad(xs []float64) int {
	n := 0
	_ = parallel.First(len(xs), 64, func(i int) bool {
		n++
		return xs[i] > 1
	})
	return n
}

// slotBad writes a fixed slot from every chunk.
func slotBad(xs, out []float64) {
	parallel.For(len(xs), 64, func(lo, hi int) {
		out[0] = xs[lo]
	})
}

// jitterBad draws from a rand source shared across chunks.
func jitterBad(out []float64, rng *rand.Rand) {
	parallel.For(len(out), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = rng.Float64()
		}
	})
}

// globalBad draws from the process-global source.
func globalBad(out []float64) {
	parallel.For(len(out), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = rand.Float64()
		}
	})
}

// stampBad reads the wall clock per element.
func stampBad(n int) []int64 {
	return parallel.Map(n, 64, func(i int) int64 {
		return time.Now().UnixNano()
	})
}

type tally struct{ total float64 }

// fieldBad writes a field of a captured struct.
func fieldBad(xs []float64, t *tally) {
	parallel.For(len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.total += xs[i]
		}
	})
}
