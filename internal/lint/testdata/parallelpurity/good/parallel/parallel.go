// Package parallel is a single-goroutine stub of the real
// internal/parallel kernels — just enough signature surface for the
// parallelpurity fixtures. The analyzer matches callees by package path
// suffix, so this package's synthetic import path ends in
// "internal/parallel" like the real one.
package parallel

func For(n, grain int, fn func(lo, hi int)) {
	if n > 0 {
		fn(0, n)
	}
}

func Reduce[T any](n, grain int, chunk func(lo, hi int) T, merge func(acc, next T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	return merge(zero, chunk(0, n))
}

func Map[R any](n, grain int, fn func(i int) R) []R {
	out := make([]R, n)
	for i := range out {
		out[i] = fn(i)
	}
	return out
}

func ArgMin(n, grain int, f func(i int) (float64, bool)) (int, float64) {
	best, bv := -1, 0.0
	for i := 0; i < n; i++ {
		if v, ok := f(i); ok && (best < 0 || v < bv) {
			best, bv = i, v
		}
	}
	return best, bv
}

func ArgMax(n, grain int, f func(i int) (float64, bool)) (int, float64) {
	best, bv := -1, 0.0
	for i := 0; i < n; i++ {
		if v, ok := f(i); ok && (best < 0 || v > bv) {
			best, bv = i, v
		}
	}
	return best, bv
}

func First(n, grain int, pred func(i int) bool) int {
	for i := 0; i < n; i++ {
		if pred(i) {
			return i
		}
	}
	return -1
}
