// Package fixture is the conforming parallelpurity counterpart: local
// accumulators, per-index slots, per-chunk seeded rand sources, and one
// justified suppression.
package fixture

import (
	"math/rand"

	"repro/fixture/internal/parallel"
)

// sumGood reduces through local accumulators and a pure merge.
func sumGood(xs []float64) float64 {
	return parallel.Reduce(len(xs), 64, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	}, func(acc, next float64) float64 { return acc + next })
}

// fillGood writes only the closure's own index slots.
func fillGood(out []float64) {
	parallel.For(len(out), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i) * 0.5
		}
	})
}

// noiseGood seeds one source per chunk, so draws are position-determined.
func noiseGood(out []float64, seed int64) {
	parallel.For(len(out), 64, func(lo, hi int) {
		rng := rand.New(rand.NewSource(seed + int64(lo)))
		for i := lo; i < hi; i++ {
			out[i] = rng.Float64()
		}
	})
}

// resetGood writes one shared slot identically from every chunk — benign
// here, and documented as such.
func resetGood(counts []int) {
	parallel.For(len(counts), 64, func(lo, hi int) {
		//lint:ignore parallelpurity fixture: every chunk writes the same constant to slot 0
		counts[0] = 0
	})
}

// pickGood scans with a pure predicate over captured read-only data.
func pickGood(xs []float64) int {
	return parallel.First(len(xs), 64, func(i int) bool {
		return xs[i] > 0.75
	})
}
