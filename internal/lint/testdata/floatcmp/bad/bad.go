// Package fixture violates the float-comparison invariant with exact
// ==/!= between floating-point operands.
package fixture

// SameHopBytes compares accumulated floats exactly.
func SameHopBytes(a, b float64) bool {
	return a == b
}

// Changed compares float32 operands exactly.
func Changed(x, y float32) bool {
	return x != y
}

// IsUnit compares against a float literal.
func IsUnit(v float64) bool {
	return v == 1.0
}
