// Package fixture shows the comparison forms floatcmp accepts:
// epsilon tests, integer accounting, and ordered comparisons.
package fixture

import "math"

const eps = 1e-9

// SameHopBytes uses an epsilon.
func SameHopBytes(a, b float64) bool {
	return math.Abs(a-b) < eps
}

// SameBytes compares integer byte·hop accounting exactly, which is
// well-defined.
func SameBytes(a, b int64) bool {
	return a == b
}

// Less orders floats; ordered comparisons are not flagged.
func Less(a, b float64) bool {
	return a < b
}

// ExactZero documents a deliberate exact comparison.
func ExactZero(v float64) bool {
	//lint:ignore floatcmp exact-zero guard on a value reset to literal 0
	return v == 0
}
