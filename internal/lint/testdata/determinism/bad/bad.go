// Package fixture violates the determinism invariant: it iterates maps
// without sorting, inside a (synthetic) algorithm package path.
package fixture

// SumKeys observes map iteration order through the loop variable.
func SumKeys(m map[int]float64) int {
	s := 0
	for k := range m {
		s += k // order-dependent accumulation of ints is fine, but the key order still leaks below
	}
	order := make([]int, 0, len(m))
	for k := range m {
		order = append(order, k)
	}
	return s + order[0]
}

// FirstValue returns a value chosen by iteration order.
func FirstValue(m map[string]int) int {
	for _, v := range m {
		return v
	}
	return 0
}
