// Package fixture shows the deterministic map-iteration idioms the
// determinism analyzer accepts.
package fixture

import "sort"

// SortedKeys collects then sorts before any order-sensitive use.
func SortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Count never observes iteration order: `for range` binds no variables.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Justified documents why unsorted iteration is safe here.
func Justified(m map[int]int) int {
	s := 0
	//lint:ignore determinism integer addition is commutative; the sum is order-independent
	for _, v := range m {
		s += v
	}
	return s
}
