package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpathPrefix marks a function as a hot-path root for the hotalloc
// analyzer:
//
//	//lint:hotpath <reason>
//
// placed in the function's doc comment. Every function statically
// reachable from a root must be free of allocating constructs (see
// hotalloc.go). The reason is free text naming the benchmark or contract
// that pins the path (e.g. "netsim steady state: BenchmarkNetsim*").
const hotpathPrefix = "//lint:hotpath"

// funcNode is one declared function (or method) of the analyzed package
// set, with its statically resolved call edges.
type funcNode struct {
	obj  *types.Func   // canonical (generic origin) object
	decl *ast.FuncDecl // declaration, body included
	pkg  *Package

	hot    bool      // declared a //lint:hotpath root
	hotPos token.Pos // position of the directive (for diagnostics)

	callees []*types.Func // static callees, deduplicated, source order
	// dynamics are call sites whose callee cannot be resolved statically:
	// calls through function-typed variables, fields, or interface
	// methods. Calls through function-typed parameters of the enclosing
	// declaration are excluded — the concrete callee is supplied by the
	// caller, and closure literals are scanned where they are created.
	dynamics []token.Pos
}

// callGraph is a lightweight intra-module static call graph built from
// the type-checked ASTs the loader produces. Method calls resolve through
// go/types method sets; interface dispatch and function values are
// recorded as dynamic sites rather than edges, so reachability is a
// conservative under-approximation paired with explicit "cannot verify"
// diagnostics at the unresolved sites.
type callGraph struct {
	nodes map[*types.Func]*funcNode
	// misplacedHotpath are //lint:hotpath comments that are not part of a
	// function declaration's doc comment and therefore mark nothing.
	misplacedHotpath []token.Pos
}

// buildCallGraph constructs the graph over the given packages. Packages
// missing type information contribute what they can; unresolvable calls
// degrade to dynamic sites.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*funcNode{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			docs := map[*ast.CommentGroup]bool{}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fd.Doc != nil {
					docs[fd.Doc] = true
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue // type error; nothing to anchor the node on
				}
				n := &funcNode{obj: obj, decl: fd, pkg: pkg}
				if c := hotpathComment(fd.Doc); c != nil {
					n.hot = true
					n.hotPos = c.Pos()
				}
				if fd.Body != nil {
					collectCalls(pkg.Info, fd, n)
				}
				g.nodes[obj] = n
			}
			// Hotpath directives anywhere else (floating comments, struct
			// docs) mark nothing and are almost certainly mistakes.
			for _, cg := range f.Comments {
				if docs[cg] {
					continue
				}
				if c := hotpathComment(cg); c != nil {
					g.misplacedHotpath = append(g.misplacedHotpath, c.Pos())
				}
			}
		}
	}
	return g
}

// hotpathComment returns the //lint:hotpath comment of the group, or nil.
func hotpathComment(doc *ast.CommentGroup) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, hotpathPrefix); ok {
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return c
			}
		}
	}
	return nil
}

// collectCalls records every call in fd's body (nested function literals
// included — their execution context cannot be narrowed statically, so
// their calls are conservatively attributed to the enclosing declaration).
func collectCalls(info *types.Info, fd *ast.FuncDecl, n *funcNode) {
	// params holds the function-typed parameters of fd and of every
	// enclosing literal: calls through them are the caller's
	// responsibility (the closure or function value is checked where it
	// is constructed), not dynamic sites of this body.
	params := map[types.Object]bool{}
	addParams := func(ft *ast.FuncType, recv *ast.FieldList) {
		for _, fl := range []*ast.FieldList{recv, ft.Params, ft.Results} {
			if fl == nil {
				continue
			}
			for _, field := range fl.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						params[obj] = true
					}
				}
			}
		}
	}
	addParams(fd.Type, fd.Recv)
	seen := map[*types.Func]bool{}
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			addParams(node.Type, nil)
			return true
		case *ast.CallExpr:
			callee, kind := resolveCallee(info, node)
			switch kind {
			case callStatic:
				callee = callee.Origin()
				if !seen[callee] {
					seen[callee] = true
					n.callees = append(n.callees, callee)
				}
			case callDynamic:
				// Calls through parameters are excluded (see params).
				if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && params[info.Uses[id]] {
					return true
				}
				n.dynamics = append(n.dynamics, node.Fun.Pos())
			}
		}
		return true
	})
}

// callKind classifies one call expression.
type callKind uint8

const (
	callStatic  callKind = iota // resolved to a single *types.Func
	callDynamic                 // function value or interface dispatch
	callOther                   // builtin, conversion, or function literal called in place
)

// resolveCallee resolves call's callee. Function literals invoked in
// place report callOther: their body is scanned by the enclosing walk
// already, so no edge is needed.
func resolveCallee(info *types.Info, call *ast.CallExpr) (*types.Func, callKind) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](...) / pkg.F[T](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return nil, callOther
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj, callStatic
		case *types.Builtin, *types.TypeName, *types.Nil:
			return nil, callOther
		default:
			// A function-typed variable (or missing type info).
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return nil, callOther // conversion
			}
			return nil, callDynamic
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m, _ := sel.Obj().(*types.Func)
				if m == nil {
					return nil, callDynamic
				}
				if types.IsInterface(sel.Recv()) || isTypeParam(sel.Recv()) {
					return nil, callDynamic // dispatched at run time
				}
				return m, callStatic
			default: // FieldVal: function-typed struct field
				return nil, callDynamic
			}
		}
		// Package-qualified selector: pkg.Fn or a conversion pkg.T(x).
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return obj, callStatic
		case *types.TypeName:
			return nil, callOther
		default:
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return nil, callOther
			}
			return nil, callDynamic
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil, callOther // conversion through a non-ident type expr
	}
	return nil, callDynamic // call of a call result, indexed value, ...
}

func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	if ok {
		return true
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		_, ok = ptr.Elem().(*types.TypeParam)
	}
	return ok
}

// roots returns the //lint:hotpath-annotated nodes sorted by qualified
// name, so reachability provenance is deterministic.
func (g *callGraph) roots() []*funcNode {
	var rs []*funcNode
	for _, n := range g.nodes {
		if n.hot {
			rs = append(rs, n)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return funcName(rs[i].obj) < funcName(rs[j].obj) })
	return rs
}

// reachableFrom runs BFS over static edges from the given roots and
// returns, for every reachable node, the (lexicographically first) root
// it was discovered from — the provenance named in diagnostics.
func (g *callGraph) reachableFrom(roots []*funcNode) map[*funcNode]*funcNode {
	origin := map[*funcNode]*funcNode{}
	var queue []*funcNode
	for _, r := range roots {
		if _, ok := origin[r]; !ok {
			origin[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, callee := range n.callees {
			cn := g.nodes[callee]
			if cn == nil {
				continue // outside the analyzed packages
			}
			if _, ok := origin[cn]; !ok {
				origin[cn] = origin[n]
				queue = append(queue, cn)
			}
		}
	}
	return origin
}

// funcName renders fn compactly for diagnostics: "netsim.(*Network).onHop".
func funcName(fn *types.Func) string {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		star := ""
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
			star = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			name = "(" + star + named.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		if i := strings.LastIndex(fn.Pkg().Path(), "/"); i >= 0 {
			return fn.Pkg().Path()[i+1:] + "." + name
		}
		return fn.Pkg().Path() + "." + name
	}
	return name
}
