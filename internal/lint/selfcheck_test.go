package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestRepositoryIsClean runs every registered analyzer over every
// package of the module and demands zero diagnostics. This is the
// regression lock: any future map iteration, unseeded randomness,
// dropped error or exact float comparison fails the build here (and in
// CI via `go run ./cmd/topolint ./...`).
func TestRepositoryIsClean(t *testing.T) {
	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(mod.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing parts of the module", len(mod.Pkgs))
	}
	for _, pkg := range mod.Pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	diags := lint.Run(mod.Pkgs, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the findings above or add //lint:ignore <analyzer> <reason> where the code is deliberately exact")
	}
}
