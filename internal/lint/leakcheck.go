package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "leakcheck",
		Doc: "goroutines spawned in internal/service and internal/netsim must " +
			"be joinable or cancellable — a go statement is accepted only when " +
			"the spawning function performs a WaitGroup.Add before it, or the " +
			"goroutine body (function literal or same-package callee) visibly " +
			"terminates: WaitGroup.Done, a ctx.Done()/ctx.Err() check, a " +
			"select, or channel operations (semaphore handoff); anything else " +
			"can leak past server shutdown or test teardown",
		Run: runLeakcheck,
	})
}

// leakcheckPkgs are the path fragments selecting the packages in scope:
// the long-running service and the simulator core it drives.
var leakcheckPkgs = []string{"internal/service", "internal/netsim"}

func runLeakcheck(p *Pass) {
	inScope := false
	for _, frag := range leakcheckPkgs {
		if strings.Contains(p.Pkg.Path, frag) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	info := p.Pkg.Info
	// Same-package function bodies, for resolving `go s.worker(...)`.
	decls := map[*types.Func]*ast.FuncDecl{}
	p.walkFiles(func(f *ast.File) {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[obj.Origin()] = fd
				}
			}
		}
	})
	p.walkFiles(func(f *ast.File) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			addPositions := waitGroupAddPositions(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if precededByAdd(addPositions, g.Pos()) {
					return true
				}
				if body := goroutineBody(info, decls, g.Call); body != nil && hasTerminationSignal(info, body) {
					return true
				}
				p.Reportf(g.Pos(), "go statement is tied to no WaitGroup, semaphore, or ctx-cancellable loop; the goroutine can leak past shutdown")
				return true
			})
		}
	})
}

// waitGroupAddPositions collects the positions of WaitGroup.Add calls in
// fd's body.
func waitGroupAddPositions(info *types.Info, fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isMethodOn(info, call, "sync", "WaitGroup", "Add") {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

func precededByAdd(adds []token.Pos, goPos token.Pos) bool {
	for _, p := range adds {
		if p < goPos {
			return true
		}
	}
	return false
}

// goroutineBody resolves the spawned body: a function literal directly,
// or the declaration of a statically resolved same-package callee.
func goroutineBody(info *types.Info, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee, kind := resolveCallee(info, call); kind == callStatic {
		if fd := decls[callee.Origin()]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// hasTerminationSignal reports whether the goroutine body visibly
// participates in a shutdown protocol: WaitGroup.Done, a context
// Done/Err check, a select statement, or any channel operation (the
// semaphore idiom). One level deep — calls out of the body are not
// followed; restructure or //lint:ignore with the protocol named.
func hasTerminationSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// range over a channel drains until close — a join signal.
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isMethodOn(info, n, "sync", "WaitGroup", "Done") ||
				isMethodOn(info, n, "context", "Context", "Done") ||
				isMethodOn(info, n, "context", "Context", "Err") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMethodOn reports whether call invokes method name on a receiver whose
// type is pkgName.typeName (matched by name so fixture stubs qualify; for
// interfaces like context.Context the method set carries the interface's
// type name).
func isMethodOn(info *types.Info, call *ast.CallExpr, pkgName, typeName, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	return isPkgNamed(t, pkgName, typeName)
}
