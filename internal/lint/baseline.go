package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is a committed snapshot of accepted findings. CI gates on
// "no findings beyond the baseline", so new code is held to the full
// contract while pre-existing debt is paid down incrementally: shrinking
// the baseline is always safe, growing it is a reviewed decision.
//
// Entries are matched as a multiset keyed by (module-relative file,
// analyzer, message) — line and column are deliberately excluded so
// unrelated edits that shift a finding a few lines do not invalidate the
// baseline.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry accepts Count findings with the same key.
type BaselineEntry struct {
	File     string `json:"file"` // module-relative, forward slashes
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

const baselineVersion = 1

func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// NewBaseline builds a baseline from diags. rel maps an absolute
// filename to its module-relative form; it must match the rel used when
// filtering later.
func NewBaseline(diags []Diagnostic, rel func(string) string) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, d := range diags {
		k := baselineKey(rel(d.Pos.Filename), d.Analyzer, d.Message)
		if e := counts[k]; e != nil {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{File: rel(d.Pos.Filename), Analyzer: d.Analyzer, Message: d.Message, Count: 1}
	}
	b := &Baseline{Version: baselineVersion}
	for _, e := range counts {
		b.Findings = append(b.Findings, *e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Filter returns the diagnostics not absorbed by the baseline. Each
// baseline entry absorbs at most Count matching findings; the rest pass
// through, so a regression that duplicates an accepted finding still
// fails the gate.
func (b *Baseline) Filter(diags []Diagnostic, rel func(string) string) []Diagnostic {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[baselineKey(e.File, e.Analyzer, e.Message)] += e.Count
	}
	var kept []Diagnostic
	for _, d := range diags {
		k := baselineKey(rel(d.Pos.Filename), d.Analyzer, d.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s has version %d, want %d", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// WriteBaseline writes b as stable, diff-friendly JSON.
func (b *Baseline) WriteBaseline(path string) error {
	if b.Findings == nil {
		b.Findings = []BaselineEntry{} // encode [] rather than null
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
