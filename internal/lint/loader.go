package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module under
// analysis. Only non-test files are loaded: the invariants topolint
// enforces apply to production code, and test files are free to use
// maps, clocks and exact float comparisons as they see fit.
type Package struct {
	Path  string // import path, e.g. "repro/internal/core"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects soft type-checking errors. Analysis proceeds
	// despite them; analyzers must tolerate missing type info.
	TypeErrors []error
}

// Module is a loaded Go module.
type Module struct {
	Path string // module path from go.mod
	Root string // absolute module root directory
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// LoadModule locates the module containing dir (by walking up to the
// nearest go.mod), then parses and type-checks every package beneath
// the module root. Imports of sibling packages resolve against the
// freshly parsed sources; standard-library imports are type-checked
// from GOROOT source via go/importer's "source" compiler, so the
// loader works with zero external dependencies and no pre-built
// export data.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modPath: modPath,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  map[string]*Package{},
	}
	mod := &Module{Path: modPath, Root: root, Fset: fset}
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := ld.load(path)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", path, err)
		}
		if pkg != nil {
			mod.Pkgs = append(mod.Pkgs, pkg)
		}
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// LoadDir parses and type-checks the single directory dir as a package
// with the given synthetic import path. It is used by the fixture
// tests, where the import path controls which path-scoped analyzers
// consider the package in scope.
func LoadDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modPath: path, // nothing below it will be imported
		root:    dir,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  map[string]*Package{},
	}
	return ld.loadAt(path, dir)
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			modPath, err = parseModulePath(data)
			if err != nil {
				return "", "", fmt.Errorf("lint: %s/go.mod: %w", d, err)
			}
			return d, modPath, nil
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

func parseModulePath(gomod []byte) (string, error) {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive")
}

// packageDirs returns every directory under root holding at least one
// non-test .go file, skipping testdata, vendor, hidden and underscore
// directories — the same set the go tool would build.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// loader type-checks module packages on demand, memoizing results. It
// doubles as the types.Importer handed to the type checker, so intra-
// module imports recurse back into it.
type loader struct {
	fset    *token.FileSet
	modPath string
	root    string
	std     types.Importer
	loaded  map[string]*Package // import path → package (nil while in progress)
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// load type-checks the module package with the given import path.
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.loaded[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return pkg, nil
	}
	dir := ld.root
	if path != ld.modPath {
		dir = filepath.Join(ld.root, filepath.FromSlash(strings.TrimPrefix(path, ld.modPath+"/")))
	}
	return ld.loadAt(path, dir)
}

func (ld *loader) loadAt(path, dir string) (*Package, error) {
	ld.loaded[path] = nil // cycle marker
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		// Respect build constraints — filename GOOS/GOARCH suffixes and
		// //go:build lines — exactly as the go tool would for the host
		// platform, so a package with platform-gated files type-checks as
		// one coherent build instead of a pile of conflicting declarations.
		if match, err := build.Default.MatchFile(dir, e.Name()); err != nil || !match {
			if err != nil {
				return nil, fmt.Errorf("match %s: %w", e.Name(), err)
			}
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		delete(ld.loaded, path)
		return nil, nil
	}
	pkg := &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: ld,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Soft errors only: Check returns the (possibly incomplete) package
	// even when pkg.TypeErrors is non-empty, and analyzers degrade
	// gracefully on missing type info.
	pkg.Types, _ = conf.Check(path, ld.fset, files, pkg.Info)
	ld.loaded[path] = pkg
	return pkg, nil
}
