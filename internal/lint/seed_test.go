package lint_test

// Seed tests: copy the real hot-path sources into a scratch module,
// inject a violation, and prove the contract analyzers catch exactly it.
// This is the acceptance check that the analyzers guard the real code,
// not just hand-built fixtures.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// scratchModule assembles a temp module named "repro" from copies of the
// given real packages (non-test files only), so intra-module imports
// resolve exactly as in the source tree. It returns the module root.
func scratchModule(t *testing.T, pkgs ...string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module repro\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		src := filepath.Join("..", "..", filepath.FromSlash(pkg))
		dst := filepath.Join(root, filepath.FromSlash(pkg))
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return root
}

// seedFile rewrites one file under root, replacing marker with
// replacement, and fails if the marker is missing (the real source moved
// — update the seed).
func seedFile(t *testing.T, root, rel, marker, replacement string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), marker) {
		t.Fatalf("seed marker %q not found in %s", marker, rel)
	}
	out := strings.Replace(string(data), marker, replacement, 1)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runAnalyzer(t *testing.T, root, analyzer string) []lint.Diagnostic {
	t.Helper()
	mod, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	a := lint.Lookup(analyzer)
	if a == nil {
		t.Fatalf("analyzer %q not registered", analyzer)
	}
	var diags []lint.Diagnostic
	for _, d := range lint.Run(mod.Pkgs, []*lint.Analyzer{a}) {
		if d.Analyzer == analyzer {
			diags = append(diags, d)
		}
	}
	return diags
}

// TestSeededWormholeAllocCaught injects a synthetic allocation into the
// real wormhole flit path and checks hotalloc reports it. The control
// run on the unmodified copy must not report the seeded site.
func TestSeededWormholeAllocCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module scratch load")
	}
	const marker = "func (w *whNetwork) startFlit(wi, h, ci int32) {"
	seedMatch := func(d lint.Diagnostic) bool {
		return strings.HasSuffix(d.Pos.Filename, "wormhole.go") &&
			strings.Contains(d.Message, "make allocates") &&
			strings.Contains(d.Message, "startFlit")
	}

	root := scratchModule(t, "internal/netsim", "internal/topology", "internal/parallel")
	for _, d := range runAnalyzer(t, root, "hotalloc") {
		if seedMatch(d) {
			t.Fatalf("control run already reports the seed site: %v", d)
		}
	}

	seeded := scratchModule(t, "internal/netsim", "internal/topology", "internal/parallel")
	seedFile(t, seeded, "internal/netsim/wormhole.go", marker,
		"//lint:hotpath seeded by TestSeededWormholeAllocCaught\n"+marker+"\n\t_ = make([]int32, int(h)+1)")
	found := false
	for _, d := range runAnalyzer(t, seeded, "hotalloc") {
		if seedMatch(d) {
			found = true
		}
	}
	if !found {
		t.Fatal("hotalloc did not catch the allocation seeded into the wormhole flit path")
	}
}

// TestSeededParallelCaptureCaught injects a captured-variable write into
// a parallel.For closure calling the real kernels and checks
// parallelpurity reports it.
func TestSeededParallelCaptureCaught(t *testing.T) {
	root := scratchModule(t, "internal/parallel")
	user := filepath.Join(root, "internal", "seeduser")
	if err := os.MkdirAll(user, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package seeduser

import "repro/internal/parallel"

func Sum(xs []float64) float64 {
	var sum float64
	parallel.For(len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
	})
	return sum
}
`
	if err := os.WriteFile(filepath.Join(user, "seed.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range runAnalyzer(t, root, "parallelpurity") {
		if strings.Contains(d.Message, "writes captured variable sum") {
			found = true
		}
	}
	if !found {
		t.Fatal("parallelpurity did not catch the captured-variable write seeded into a parallel.For closure")
	}
}
