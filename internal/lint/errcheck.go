package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "errcheck",
		Doc: "flags call statements whose error result is silently discarded, " +
			"and blank assignments (`_ = f.Close()`) that throw an error away; " +
			"allowed exceptions: fmt printing to the terminal and writes to the " +
			"infallible strings.Builder/bytes.Buffer; deferred calls are exempt " +
			"by design (deferred cleanup has no error path to return through)",
		Run: runErrcheck,
	})
}

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errIface)
}

func runErrcheck(p *Pass) {
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// Deferred and spawned calls cannot return an error to
				// the enclosing function; flagging them would only breed
				// noise. Writers that must not lose Close errors check
				// them explicitly on the success path.
				return false
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if ok && callReturnsError(info, call) && !errcheckAllowed(info, call) {
					p.Reportf(call.Pos(), "error result of %s is discarded; handle it or //lint:ignore with a reason", callName(info, call))
				}
				return false
			case *ast.AssignStmt:
				// Flag `_ = call()` / `_, _ = call()` where every result
				// of an error-returning call is blanked.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !callReturnsError(info, call) || !allBlank(n.Lhs) {
					return true
				}
				if !errcheckAllowed(info, call) {
					p.Reportf(n.Pos(), "error result of %s is blanked; handle it or //lint:ignore with a reason", callName(info, call))
				}
			}
			return true
		})
	})
}

func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// callReturnsError reports whether any result of call is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false // builtin or type conversion
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// fmtTerminalFuncs print to os.Stdout and are fire-and-forget by
// convention.
var fmtTerminalFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

// fmtWriterFuncs take an io.Writer first argument; they are allowed
// only when that writer cannot fail.
var fmtWriterFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// errcheckAllowed reports whether the discarded error is conventionally
// ignorable: fmt printing to the terminal, fmt.Fprint* into an
// infallible in-memory writer or a standard stream, or a method on
// strings.Builder/bytes.Buffer (documented to always return nil).
func errcheckAllowed(info *types.Info, call *ast.CallExpr) bool {
	if pkgPath, fn := pkgQualifiedCall(info, call); pkgPath == "fmt" {
		if fmtTerminalFuncs[fn] {
			return true
		}
		if fmtWriterFuncs[fn] && len(call.Args) > 0 {
			return isInfallibleWriter(info, call.Args[0]) || isStdStream(info, call.Args[0])
		}
		return false
	}
	// Methods on infallible in-memory writers: b.WriteByte, buf.WriteString, ...
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && isInfallibleWriterType(tv.Type) {
			return true
		}
	}
	return false
}

func isInfallibleWriter(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	return ok && isInfallibleWriterType(tv.Type)
}

func isInfallibleWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream matches the expressions os.Stdout and os.Stderr.
func isStdStream(info *types.Info, arg ast.Expr) bool {
	sel, ok := arg.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

// callName renders the callee compactly for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
