package lint_test

import (
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/lint"
)

// TestLoadDirGenerics pins the loader's behavior on the generics-heavy
// real internal/parallel package — the call-graph analyzers depend on
// instantiated generic calls resolving to their origin objects.
func TestLoadDirGenerics(t *testing.T) {
	pkg, err := lint.LoadDir(filepath.Join("..", "parallel"), "repro/internal/parallel")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg == nil {
		t.Fatal("no package loaded")
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("type error in generics package: %v", terr)
	}
	for _, name := range []string{"For", "Reduce", "Map", "ArgMin", "ArgMax", "First"} {
		obj := pkg.Types.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("kernel %s not found in package scope", name)
		}
		if _, ok := obj.(*types.Func); !ok {
			t.Fatalf("kernel %s is a %T, want *types.Func", name, obj)
		}
	}
	// The generic kernels must expose their type parameters, proving the
	// loader type-checked them as generics rather than degrading.
	for _, name := range []string{"Reduce", "Map"} {
		fn := pkg.Types.Scope().Lookup(name).(*types.Func)
		sig := fn.Type().(*types.Signature)
		if sig.TypeParams().Len() == 0 {
			t.Errorf("kernel %s lost its type parameters in loading", name)
		}
	}
}

// TestLoadDirBuildTags pins constraint handling: files excluded by a
// //go:build line or a GOOS filename suffix must not reach the type
// checker. The excluded files redeclare grain() with a conflicting
// signature, so any leakage shows up as duplicate-declaration errors.
func TestLoadDirBuildTags(t *testing.T) {
	otherOS := "linux"
	if runtime.GOOS == "linux" {
		otherOS = "windows"
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("base.go", "package tagged\n\nfunc grain() int { return 64 }\n")
	write("gated_on.go", "//go:build "+runtime.GOOS+"\n\npackage tagged\n\nfunc hostGrain() int { return grain() }\n")
	write("gated_off.go", "//go:build never_set_tag\n\npackage tagged\n\nfunc grain() string { return \"conflict\" }\n")
	write("only_"+otherOS+".go", "package tagged\n\nfunc grain() float64 { return 0 }\n")

	pkg, err := lint.LoadDir(dir, "repro/internal/tagged")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("excluded file leaked into the build: %v", terr)
	}
	if got := len(pkg.Files); got != 2 {
		t.Errorf("loaded %d files, want 2 (base.go and gated_on.go)", got)
	}
	if pkg.Types.Scope().Lookup("hostGrain") == nil {
		t.Error("host-tagged file was not loaded")
	}
}
