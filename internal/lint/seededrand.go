package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// randConstructors are the only package-level math/rand functions
// algorithm code may call: they build the injected, explicitly seeded
// generator every strategy must thread through its computation.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// timingPkgs are the package-path fragments where wall-clock access is
// legitimate: benchmark harnesses and CLIs. Everywhere else, time.Now
// would let timing leak into results.
var timingPkgs = []string{
	"internal/experiments",
	"cmd/",
	"examples/",
}

func init() {
	Register(&Analyzer{
		Name: "seededrand",
		Doc: "flags calls to math/rand's global generator (rand.Intn, " +
			"rand.Float64, rand.Shuffle, ...) everywhere, and time.Now/" +
			"time.Since outside internal/experiments, cmd/ and examples/; " +
			"randomness must flow through an injected *rand.Rand built from " +
			"an explicit seed so runs are reproducible",
		Run: runSeededRand,
	})
}

func timingAllowed(pkgPath string) bool {
	for _, p := range timingPkgs {
		if strings.Contains(pkgPath+"/", "/"+p) {
			return true
		}
	}
	return false
}

func runSeededRand(p *Pass) {
	timingOK := timingAllowed(p.Pkg.Path)
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn := pkgQualifiedCall(p.Pkg.Info, call)
			switch {
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[fn]:
				p.Reportf(call.Pos(), "call to global rand.%s bypasses seed injection; use a *rand.Rand built with rand.New(rand.NewSource(seed))", fn)
			case pkgPath == "time" && (fn == "Now" || fn == "Since") && !timingOK:
				p.Reportf(call.Pos(), "time.%s in algorithm code makes results timing-dependent; timing belongs in internal/experiments or cmd/", fn)
			}
			return true
		})
	})
}

// pkgQualifiedCall returns the imported package path and function name
// when call is pkg.Fn(...) with pkg a package name; otherwise "", "".
// Method calls on values (e.g. rng.Intn where rng is a *rand.Rand) do
// not qualify, which is exactly the distinction seededrand needs.
func pkgQualifiedCall(info *types.Info, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
