package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "parallelpurity",
		Doc: "closures passed to the internal/parallel kernels (For, Reduce, " +
			"Map, ArgMin, ArgMax, First) run concurrently over index chunks, so " +
			"bit-identical results at any GOMAXPROCS require them to be pure " +
			"per-index transforms: no writes to captured variables, no writes " +
			"to captured slices at indices not derived from the closure's own " +
			"variables, and no nondeterministic APIs (wall clock, shared " +
			"math/rand state)",
		Run: runParallelpurity,
	})
}

// parallelKernels are the exported kernels whose closure arguments are
// checked. The value is the human-readable callee rendered in messages.
var parallelKernels = map[string]bool{
	"For": true, "Reduce": true, "Map": true,
	"ArgMin": true, "ArgMax": true, "First": true,
}

func runParallelpurity(p *Pass) {
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, kind := resolveCallee(info, call)
			if kind != callStatic || callee.Pkg() == nil {
				return true
			}
			if !strings.HasSuffix(callee.Pkg().Path(), "internal/parallel") || !parallelKernels[callee.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkKernelClosure(info, "parallel."+callee.Name(), lit, p)
				}
			}
			return true
		})
	})
}

// checkKernelClosure scans one closure literal passed to a parallel
// kernel for impurities.
func checkKernelClosure(info *types.Info, kernel string, lit *ast.FuncLit, p *Pass) {
	// local reports whether obj is declared inside the closure itself
	// (parameter or body local); everything else — enclosing-function
	// locals, receivers, package-level state — is captured shared state.
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	capturedRoot := func(x ast.Expr) *ast.Ident {
		id := rootIdent(x)
		if id == nil || id.Name == "_" {
			return nil
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !local(v) {
			return id
		}
		return nil
	}
	containsLocal := func(x ast.Expr) bool {
		found := false
		ast.Inspect(x, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && local(info.Uses[id]) {
				found = true
			}
			return !found
		})
		return found
	}
	checkWrite := func(target ast.Expr) {
		switch e := ast.Unparen(target).(type) {
		case *ast.Ident:
			if id := capturedRoot(e); id != nil {
				p.Reportf(e.Pos(), "closure passed to %s writes captured variable %s; results become schedule-dependent — confine each index's output to its own slot", kernel, id.Name)
			}
		case *ast.IndexExpr:
			if id := capturedRoot(e.X); id != nil && !containsLocal(e.Index) {
				p.Reportf(e.Pos(), "closure passed to %s writes %s at an index not derived from the closure's own variables; overlapping slots race across chunks", kernel, id.Name)
			}
		case *ast.StarExpr:
			if id := capturedRoot(e.X); id != nil {
				p.Reportf(e.Pos(), "closure passed to %s writes through captured pointer %s; results become schedule-dependent", kernel, id.Name)
			}
		case *ast.SelectorExpr:
			if id := capturedRoot(e); id != nil {
				p.Reportf(e.Pos(), "closure passed to %s writes a field of captured %s; results become schedule-dependent", kernel, id.Name)
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		case *ast.CallExpr:
			checkNondet(info, kernel, lit, local, n, p)
		}
		return true
	})
}

// checkNondet flags calls to nondeterministic APIs inside a kernel
// closure: the wall clock, and math/rand state shared across chunks. A
// *rand.Rand constructed inside the closure (one seeded source per
// chunk) is the sanctioned pattern and is not flagged.
func checkNondet(info *types.Info, kernel string, lit *ast.FuncLit, local func(types.Object) bool, call *ast.CallExpr, p *Pass) {
	callee, kind := resolveCallee(info, call)
	if kind != callStatic || callee.Pkg() == nil {
		return
	}
	switch callee.Pkg().Path() {
	case "time":
		switch callee.Name() {
		case "Now", "Since", "Until", "Sleep":
			p.Reportf(call.Pos(), "closure passed to %s calls time.%s; the wall clock makes kernel results schedule-dependent", kernel, callee.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			// Method on a Rand/Source value: fine when the receiver is
			// closure-local (per-chunk seeded source), shared state otherwise.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id := rootIdent(sel.X); id != nil && local(info.Uses[id]) {
					return
				}
			}
			p.Reportf(call.Pos(), "closure passed to %s calls %s on a captured source; chunks race on its state — construct a seeded source inside the closure", kernel, callee.Name())
			return
		}
		if strings.HasPrefix(callee.Name(), "New") {
			return // constructors (New, NewSource, ...) are deterministic
		}
		p.Reportf(call.Pos(), "closure passed to %s calls %s.%s (process-global source); draws depend on scheduling — construct a seeded source inside the closure", kernel, callee.Pkg().Path(), callee.Name())
	}
}

// rootIdent unwraps selectors, indexing, stars and parens down to the
// base identifier of an lvalue-ish expression, or nil.
func rootIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.ParenExpr:
			x = e.X
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		default:
			return nil
		}
	}
}
