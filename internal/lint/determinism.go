package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// algorithmPkgs are the packages whose outputs must be bit-for-bit
// reproducible for a given seed: every mapping strategy, partitioner,
// baseline, graph builder and topology model. Map iteration order is
// randomized by the runtime, so a bare `range` over a map in these
// packages is a reproducibility bug unless the keys are collected and
// sorted first.
var algorithmPkgs = []string{
	"internal/core",
	"internal/netsim",
	"internal/parallel",
	"internal/partition",
	"internal/baselines",
	"internal/taskgraph",
	"internal/topology",
	"internal/sfc",
	"internal/hiertopo",
	// The mapping service caches and coalesces responses by content key,
	// which is only sound if its responses are bit-for-bit reproducible.
	"internal/service",
}

func init() {
	Register(&Analyzer{
		Name: "determinism",
		Doc: "flags `range` over a map in algorithm packages (internal/core, " +
			"internal/netsim, internal/parallel, internal/partition, " +
			"internal/baselines, internal/taskgraph, internal/topology, " +
			"internal/sfc, internal/hiertopo, internal/service) " +
			"unless the loop only " +
			"collects keys/values that " +
			"are sorted immediately afterwards; map iteration order would " +
			"otherwise leak nondeterminism into mappings",
		Run: runDeterminism,
	})
}

// inAlgorithmScope reports whether the package's import path falls
// under one of the algorithm package roots (subpackages included).
func inAlgorithmScope(pkgPath string) bool {
	for _, p := range algorithmPkgs {
		// Match ".../internal/core" and ".../internal/core/...": the
		// module prefix varies between the real module and fixtures.
		if strings.HasSuffix(pkgPath, "/"+p) || strings.Contains(pkgPath, "/"+p+"/") {
			return true
		}
	}
	return false
}

func runDeterminism(p *Pass) {
	if !inAlgorithmScope(p.Pkg.Path) {
		return
	}
	p.walkFiles(func(f *ast.File) {
		// Walk with enough context to see each range statement's
		// enclosing statement list, so the collect-then-sort idiom can
		// be recognized.
		ast.Inspect(f, func(n ast.Node) bool {
			body, ok := blockStmts(n)
			if !ok {
				return true
			}
			for i, stmt := range body {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(p.Pkg.Info, rs.X) {
					continue
				}
				// `for range m` never observes iteration order.
				if rs.Key == nil && rs.Value == nil {
					continue
				}
				if isCollectThenSort(rs, body[i+1:]) {
					continue
				}
				p.Reportf(rs.Pos(), "range over map %s has nondeterministic order; collect and sort the keys first (or //lint:ignore with a reason)", types.ExprString(rs.X))
			}
			return true
		})
	})
}

// blockStmts returns the statement list of any node that owns one.
func blockStmts(n ast.Node) ([]ast.Stmt, bool) {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List, true
	case *ast.CaseClause:
		return n.Body, true
	case *ast.CommClause:
		return n.Body, true
	}
	return nil, false
}

func isMapType(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isCollectThenSort recognizes the one deterministic map-iteration
// idiom this repo allows:
//
//	for k := range m { keys = append(keys, k) }   // pure collection
//	sort.Slice(keys, ...)                         // before any other use
//
// The loop body must consist solely of append assignments, and a
// sort.* or slices.Sort* call must appear in the statements that
// follow the loop in the same block.
func isCollectThenSort(rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return false
		}
		for _, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
		}
	}
	for _, stmt := range rest {
		if stmtCallsSort(stmt) {
			return true
		}
	}
	return false
}

func stmtCallsSort(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
			found = true
			return false
		}
		return true
	})
	return found
}
