package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "floatcmp",
		Doc: "flags == and != between floating-point operands; hop-byte and " +
			"load comparisons must use an epsilon or integer byte·hop " +
			"accounting — exact float equality silently diverges across " +
			"evaluation orders and architectures",
		Run: runFloatcmp,
	})
}

func runFloatcmp(p *Pass) {
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloatExpr(info, be.X) || isFloatExpr(info, be.Y) {
				p.Reportf(be.Pos(), "%s compares floats exactly; use an epsilon or integer accounting (or //lint:ignore with a reason)",
					types.ExprString(be))
			}
			return true
		})
	})
}

func isFloatExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
