package topomap_test

import (
	"fmt"

	topomap "repro"
)

// Example reproduces the library's headline behavior: TopoLB finds the
// optimal embedding of a Jacobi pattern into a torus while random
// placement pays the machine's mean internode distance.
func Example() {
	tasks := topomap.Mesh2DPattern(16, 16, 1<<20)
	machine, _ := topomap.NewTorus(16, 16)

	topo, _ := topomap.TopoLB{}.Map(tasks, machine)
	rand, _ := (topomap.Random{Seed: 1}).Map(tasks, machine)

	fmt.Printf("E[random] = %.1f\n", topomap.ExpectedRandomHopsPerByte(machine))
	fmt.Printf("TopoLB    = %.1f\n", topomap.HopsPerByte(tasks, machine, topo))
	fmt.Printf("random    = %.1f\n", topomap.HopsPerByte(tasks, machine, rand))
	// Output:
	// E[random] = 8.0
	// TopoLB    = 1.0
	// random    = 8.0
}

// ExampleMapTasks runs the two-phase pipeline for an application with far
// more tasks than processors.
func ExampleMapTasks() {
	tasks := topomap.LeanMD(16, 1e4, 1) // 3256 chares
	machine, _ := topomap.NewTorus(4, 4)
	res, _ := topomap.MapTasks(tasks, machine, nil, nil)
	fmt.Println(len(res.Placement), res.QuotientGraph.NumVertices())
	// Output: 3256 16
}

// ExampleRefineTopoLB shows strategy composition.
func ExampleRefineTopoLB() {
	tasks := topomap.Mesh2DPattern(4, 4, 1000)
	machine, _ := topomap.NewTorus(4, 4)
	s := topomap.RefineTopoLB{Base: topomap.TopoCentLB{}}
	m, _ := s.Map(tasks, machine)
	fmt.Println(s.Name(), m.Validate(tasks, machine) == nil)
	// Output: TopoCentLB+Refine true
}
