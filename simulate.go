package topomap

import (
	"repro/internal/emulator"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// SimConfig parameterizes the discrete-event network simulator
// (bandwidth, per-hop latency, packetization).
type SimConfig = netsim.Config

// SimStats carries network-level simulation statistics.
type SimStats = netsim.Stats

// TraceProgram is a replayable iterative application trace.
type TraceProgram = trace.Program

// TraceResult reports a completed trace replay.
type TraceResult = trace.Result

// NewTrace converts a task graph into an iterative nearest-neighbor
// program: each iteration every task computes for computeTime seconds and
// sends each neighbor the edge weight in bytes.
func NewTrace(g *TaskGraph, iterations int, computeTime float64) (*TraceProgram, error) {
	return trace.FromTaskGraph(g, iterations, computeTime)
}

// ReplayTrace executes a program on the simulated network under the given
// task-to-processor mapping, honoring event dependencies (§5.3's
// BigNetSim methodology).
func ReplayTrace(p *TraceProgram, mapping []int, cfg SimConfig) (TraceResult, error) {
	return trace.Replay(p, mapping, cfg)
}

// Machine is the contention-based BlueGene-style machine emulator used
// for Table 1 and Figures 10–11 class experiments.
type Machine = emulator.Machine

// EmulatorResult reports an emulated iterative run.
type EmulatorResult = emulator.Result

// DefaultMachine returns a BlueGene/L-flavored machine on t
// (175 MB/s links, 100 ns/hop, 5 µs per-message overhead).
func DefaultMachine(t Router) *Machine { return emulator.DefaultMachine(t) }
