// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-id table1|fig1|...|fig11|ablation-*|all]
//
// Without -quick, problem sizes match the paper's (the fig1 sweep reaches
// p = 6084 and can take minutes). Output is one aligned text table per
// experiment, with the same rows/series the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced sizes/iterations (seconds instead of minutes)")
	id := flag.String("id", "all", "experiment id (table1, fig1..fig11, ablation-*, extras-*, all, ablations, extras)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	outDir := flag.String("out", "", "also write each table as CSV into this directory")
	flag.Parse()

	reg := experiments.Registry(*quick)
	for k, v := range experiments.AblationRegistry(*quick) {
		reg[k] = v
	}
	for k, v := range experiments.ExtrasRegistry(*quick) {
		reg[k] = v
	}
	if *list {
		ids := make([]string, 0, len(reg))
		for k := range reg {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		for _, k := range ids {
			fmt.Println(k)
		}
		return
	}

	var ids []string
	switch *id {
	case "all":
		ids = experiments.IDs()
	case "ablations":
		ids = experiments.AblationIDs()
	case "extras":
		ids = experiments.ExtrasIDs()
	default:
		if _, ok := reg[*id]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", *id)
			os.Exit(2)
		}
		ids = []string{*id}
	}
	// Generate the selected experiments in parallel — each is independent
	// and internally deterministic — but print strictly in id order so the
	// output matches the serial run byte for byte.
	type generated struct {
		tbl *experiments.Table
		err error
	}
	tables := parallel.Map(len(ids), 1, func(i int) generated {
		tbl, err := reg[ids[i]]()
		return generated{tbl: tbl, err: err}
	})
	for i, k := range ids {
		tbl, err := tables[i].tbl, tables[i].err
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", k, err)
			os.Exit(1)
		}
		if err := tbl.Format(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*outDir, k+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if err := tbl.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}
