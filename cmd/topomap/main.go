// Command topomap maps a task graph onto a network topology and reports
// hop-bytes metrics for one or more strategies.
//
// Usage:
//
//	topomap -topo torus:8,8 -pattern mesh2d:8,8 -msg 100000 \
//	        -strategy topolb,topocentlb,random -refine -metrics -draw
//	topomap -topo mesh:4,4,4 -graph app.json -partition multilevel
//
// The task graph comes either from a built-in pattern (-pattern) or from
// a JSON file written by the taskgraph package (-graph). When the graph
// has more tasks than the topology has processors, the two-phase pipeline
// partitions it first (-partition selects the partitioner). With -metrics
// the report adds dilation, Bokhari cardinality, and routed link loads;
// with -draw each bijective mapping is rendered as an ASCII grid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	topomap "repro"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/taskgraph"
	"repro/internal/topology"
	"repro/internal/viz"
)

func main() {
	topoSpec := flag.String("topo", "torus:8,8",
		"topology: torus:D1,D2[,..] | mesh:D1,.. | hypercube:D | fattree:A,L | hier:LEVEL:N/..[:LEAF]")
	patSpec := flag.String("pattern", "", "pattern spec, e.g. mesh2d:8,8 (see internal/cliutil)")
	graphFile := flag.String("graph", "", "task graph JSON file (alternative to -pattern)")
	msg := flag.Float64("msg", 1e5, "message bytes per edge for built-in patterns")
	strategies := flag.String("strategy", "topolb,topocentlb,random", "comma-separated strategies (see internal/cliutil)")
	refine := flag.Bool("refine", false, "apply RefineTopoLB after each strategy")
	draw := flag.Bool("draw", false, "render each bijective mapping as an ASCII grid")
	full := flag.Bool("metrics", false, "report dilation, cardinality, and routed link loads")
	partName := flag.String("partition", "multilevel", "partitioner when tasks > processors: multilevel | greedy")
	seed := flag.Int64("seed", 1, "seed for randomized components")
	jsonOut := flag.Bool("json", false, "emit JSON (mappings, reports, and runtime counters) instead of the table")
	flag.Parse()

	// ParseAnyTopology admits the routing-free machines too (fat-trees,
	// hierarchies); only the simulator needs per-link routes, and topomap
	// never simulates.
	topo, err := cliutil.ParseAnyTopology(*topoSpec)
	fatalIf(err)
	g, err := loadGraph(*patSpec, *graphFile, *msg, *seed)
	fatalIf(err)

	var part partition.Partitioner
	switch *partName {
	case "multilevel":
		part = partition.Multilevel{Seed: *seed}
	case "greedy":
		part = partition.Greedy{}
	default:
		fatalIf(fmt.Errorf("unknown partitioner %q", *partName))
	}

	if !*jsonOut {
		fmt.Printf("topology: %s (%d processors, mean distance %.3f)\n",
			topo.Name(), topo.Nodes(), topology.MeanDistance(topo))
		fmt.Printf("taskgraph: %s (%d tasks, %d edges, %.3g bytes/iter)\n",
			g.Name(), g.NumVertices(), g.NumEdges(), g.TotalComm())
		fmt.Printf("E[random hops/byte] = %.3f\n\n", core.ExpectedRandomHopsPerByte(topo))
		header := fmt.Sprintf("%-22s  %12s  %12s  %10s", "strategy", "hop-bytes", "hops/byte", "imbalance")
		if *full {
			header += fmt.Sprintf("  %9s  %11s  %12s  %8s", "dilation", "cardinality", "maxLinkByte", "linkCV")
		}
		fmt.Println(header)
	}

	// jsonReport mirrors the table: one entry per strategy plus the
	// process-wide reuse counters (distance-matrix cache, engine pool).
	type jsonEntry struct {
		Strategy string          `json:"strategy"`
		Mapping  []int           `json:"mapping"`
		Report   *metrics.Report `json:"report"`
	}
	type jsonReport struct {
		Topology   string                 `json:"topology"`
		Processors int                    `json:"processors"`
		Graph      string                 `json:"graph"`
		Tasks      int                    `json:"tasks"`
		Results    []jsonEntry            `json:"results"`
		Counters   metrics.SystemCounters `json:"counters"`
	}
	report := jsonReport{
		Topology:   topo.Name(),
		Processors: topo.Nodes(),
		Graph:      g.Name(),
		Tasks:      g.NumVertices(),
	}

	strats, err := cliutil.ParseStrategies(*strategies, *seed)
	fatalIf(err)
	// Geometric strategies consume the pattern's coordinates when the
	// pattern has them; graph files carry no geometry, so those jobs use
	// the BFS fallback.
	var coords [][]float64
	if *patSpec != "" {
		coords = cliutil.PatternCoords(*patSpec, *seed)
	}
	for _, strat := range strats {
		strat = cliutil.WithCoords(strat, coords)
		if *refine {
			strat = core.RefineTopoLB{Base: strat}
		}
		var placement []int
		if g.NumVertices() == topo.Nodes() {
			m, err := strat.Map(g, topo)
			fatalIf(err)
			placement = m
		} else {
			res, err := topomap.MapTasks(g, topo, part, strat)
			fatalIf(err)
			placement = res.Placement
		}
		rep, err := metrics.Evaluate(g, topo, placement)
		fatalIf(err)
		if *jsonOut {
			report.Results = append(report.Results, jsonEntry{
				Strategy: strat.Name(), Mapping: placement, Report: rep,
			})
			continue
		}
		line := fmt.Sprintf("%-22s  %12.4g  %12.4f  %10.3f",
			strat.Name(), rep.HopBytes, rep.HopsPerByte, rep.Imbalance)
		if *full {
			line += fmt.Sprintf("  %9d  %11d  %12.4g  %8.3f",
				rep.MaxDilation, rep.Cardinality, rep.MaxLinkBytes, rep.LinkCV)
		}
		fmt.Println(line)
		if *draw && g.NumVertices() == topo.Nodes() {
			if co, ok := topo.(topology.Coordinated); ok {
				if grid, err := viz.RenderPlacement(co, placement); err == nil {
					fmt.Println(grid)
				}
			}
		}
	}
	if *jsonOut {
		report.Counters = metrics.Counters()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(report))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "topomap:", err)
		os.Exit(1)
	}
}

func loadGraph(pattern, file string, msg float64, seed int64) (*taskgraph.Graph, error) {
	if (pattern == "") == (file == "") {
		return nil, fmt.Errorf("exactly one of -pattern or -graph is required")
	}
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return taskgraph.ReadJSON(f)
	}
	return cliutil.ParsePattern(pattern, msg, seed)
}
