// Command netsim replays an iterative application trace through the
// discrete-event network simulator under different mappings — the §5.3
// methodology (BigNetSim).
//
// Usage:
//
//	netsim -topo torus:4,4,4 -pattern mesh2d:8,8 -msg 4096 \
//	       -iters 2000 -bw 2e8 -strategy topolb,topocentlb,random
//
// A trace can also be generated once with -dump trace.gob and replayed
// later with -trace trace.gob.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func main() {
	topoSpec := flag.String("topo", "torus:4,4,4", "topology: torus:.. | mesh:.. | hypercube:D")
	patSpec := flag.String("pattern", "mesh2d:8,8", "pattern: mesh2d:RX,RY | mesh3d:RX,RY,RZ | ring:N")
	msg := flag.Float64("msg", 4096, "message bytes per edge per iteration")
	iters := flag.Int("iters", 200, "iterations")
	compute := flag.Float64("compute", 20e-6, "seconds of compute per task per iteration")
	bw := flag.Float64("bw", 2e8, "link bandwidth, bytes/second")
	hop := flag.Float64("hop", 100e-9, "per-hop latency, seconds")
	packet := flag.Int("packet", 1024, "packet size in bytes (0 = whole messages)")
	mode := flag.String("mode", "packet", "contention model: packet | wormhole")
	flit := flag.Int("flit", 0, "wormhole flit size in bytes (0 = default)")
	flitBuf := flag.Int("flitbuf", 0, "wormhole per-(link,VC) flit buffer depth (0 = default)")
	strategies := flag.String("strategy", "topolb,topocentlb,random", "strategies to compare")
	seed := flag.Int64("seed", 1, "seed for random placement")
	dump := flag.String("dump", "", "write the generated trace to this gob file and exit")
	traceFile := flag.String("trace", "", "replay this trace file instead of generating one")
	flag.Parse()

	topo, err := cliutil.ParseTopology(*topoSpec)
	fatalIf(err)

	var prog *trace.Program
	var g *taskgraph.Graph
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		fatalIf(err)
		prog, err = trace.ReadGob(f)
		closeErr := f.Close()
		fatalIf(err)
		fatalIf(closeErr)
		g = programGraph(prog)
	} else {
		g, err = cliutil.ParsePattern(*patSpec, *msg, *seed)
		fatalIf(err)
		prog, err = trace.FromTaskGraph(g, *iters, *compute)
		fatalIf(err)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		fatalIf(err)
		fatalIf(prog.WriteGob(f))
		fatalIf(f.Close())
		fmt.Printf("wrote %s (%d tasks, %d iterations)\n", *dump, prog.NumTasks(), prog.Iterations)
		return
	}
	if prog.NumTasks() != topo.Nodes() {
		fatalIf(fmt.Errorf("%d tasks but %d processors", prog.NumTasks(), topo.Nodes()))
	}

	simMode, err := netsim.ParseMode(*mode)
	fatalIf(err)
	cfg := netsim.Config{Topology: topo, LinkBandwidth: *bw, LinkLatency: *hop, PacketSize: *packet,
		Mode: simMode, FlitSize: *flit, FlitBuffer: *flitBuf}
	fmt.Printf("%s, %d tasks, %d iterations, bw %.3g B/s, %s mode\n",
		topo.Name(), prog.NumTasks(), prog.Iterations, *bw, simMode)
	fmt.Printf("%-14s  %14s  %14s  %14s  %12s\n", "strategy", "completion(ms)", "avgLat(us)", "maxLat(us)", "maxLinkBusy")
	strats, err := cliutil.ParseStrategies(*strategies, *seed)
	fatalIf(err)
	jobs := make([]experiments.SimJob, len(strats))
	for i, strat := range strats {
		m, err := strat.Map(g, topo)
		fatalIf(err)
		jobs[i] = experiments.SimJob{Prog: prog, Mapping: m, Cfg: cfg}
	}
	// The replays are independent, so run them across GOMAXPROCS; results
	// come back in strategy order, so output is identical to the serial loop.
	results, err := experiments.RunSims(jobs)
	fatalIf(err)
	for i, strat := range strats {
		res := results[i]
		fmt.Printf("%-14s  %14.3f  %14.3f  %14.3f  %12.4g\n",
			strat.Name(), res.CompletionTime*1e3,
			res.Net.AvgLatency*1e6, res.Net.MaxLatency*1e6, res.Net.MaxLinkBusy)
	}
}

// programGraph reconstructs a task graph from a trace so strategies can
// map it.
func programGraph(p *trace.Program) *taskgraph.Graph {
	b := taskgraph.NewBuilder(p.NumTasks())
	for v := range p.Dest {
		for i, d := range p.Dest[v] {
			if int32(v) < d {
				b.AddEdge(v, int(d), p.Bytes[v][i])
			}
		}
	}
	return b.Build(p.Name)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}
