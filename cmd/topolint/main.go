// Command topolint runs the repository's static-analysis suite
// (internal/lint) over the module containing the working directory.
//
// Usage:
//
//	topolint [-json] [-analyzers name,name] [-list] [-baseline file] [-update-baseline] [patterns ...]
//
// Patterns select packages: "./..." (everything, the default), a
// relative directory like ./internal/core, a "./dir/..." subtree, or
// a full import path. Exit status is 0 when the tree is clean, 1 when
// any diagnostic is reported, and 2 on usage or load errors.
//
// With -baseline, findings recorded in the given baseline file are
// filtered out, so the gate fails only on new diagnostics;
// -update-baseline rewrites the file to accept the current findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("topolint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	names := fs.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	baselinePath := fs.String("baseline", "", "filter findings recorded in this baseline file")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite -baseline file accepting current findings")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: topolint [-json] [-analyzers name,name] [-list] [-baseline file] [-update-baseline] [patterns ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "topolint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "topolint: %v\n", err)
		return 2
	}
	mod, err := lint.LoadModule(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topolint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := selectPackages(mod, wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topolint: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	rel := func(filename string) string { return relPath(mod.Root, filename) }
	if *updateBaseline {
		if *baselinePath == "" {
			fmt.Fprintf(os.Stderr, "topolint: -update-baseline requires -baseline\n")
			return 2
		}
		if err := lint.NewBaseline(diags, rel).WriteBaseline(*baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "topolint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "topolint: wrote %s accepting %d finding(s)\n", *baselinePath, len(diags))
		return 0
	}
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topolint: %v\n", err)
			return 2
		}
		diags = base.Filter(diags, rel)
	}
	if *jsonOut {
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{
				File:     relPath(mod.Root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "topolint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stdout, "%s:%d:%d: [%s] %s\n",
				relPath(mod.Root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath shortens filename relative to the module root for stable,
// readable output.
func relPath(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// selectPackages resolves go-tool-style patterns against the loaded
// module. Supported forms: "./..." and "dir/...", plain directories
// ("./internal/core", "internal/core"), import paths, and ".".
func selectPackages(mod *lint.Module, wd string, patterns []string) ([]*lint.Package, error) {
	seen := map[string]bool{}
	var out []*lint.Package
	for _, pat := range patterns {
		matched := false
		for _, pkg := range mod.Pkgs {
			if matchPattern(mod, wd, pat, pkg) && !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
				matched = true
			} else if matchPattern(mod, wd, pat, pkg) {
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func matchPattern(mod *lint.Module, wd, pat string, pkg *lint.Package) bool {
	// Normalize the pattern to an import path (possibly with /... suffix).
	subtree := false
	if pat == "..." {
		return true
	}
	if strings.HasSuffix(pat, "/...") {
		subtree = true
		pat = strings.TrimSuffix(pat, "/...")
	}
	var base string
	switch {
	case pat == "." || pat == "./" || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../"):
		abs := filepath.Clean(filepath.Join(wd, pat))
		rel, err := filepath.Rel(mod.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return false
		}
		base = mod.Path
		if rel != "." {
			base = mod.Path + "/" + filepath.ToSlash(rel)
		}
	case pat == mod.Path || strings.HasPrefix(pat, mod.Path+"/"):
		base = pat
	default:
		// Bare relative directory like "internal/core".
		base = mod.Path + "/" + strings.TrimSuffix(pat, "/")
	}
	if subtree {
		return pkg.Path == base || strings.HasPrefix(pkg.Path, base+"/")
	}
	return pkg.Path == base
}
