package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// topolintBin is built once by TestMain.
var topolintBin string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "topolint-test")
	if err != nil {
		panic(err)
	}
	topolintBin = filepath.Join(tmp, "topolint")
	out, err := exec.Command("go", "build", "-o", topolintBin, ".").CombinedOutput()
	if err != nil {
		panic("build topolint: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	_ = os.RemoveAll(tmp) // best-effort temp cleanup on exit
	os.Exit(code)
}

// runTopolint executes the binary in dir and returns stdout, stderr and
// the exit code.
func runTopolint(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(topolintBin, args...)
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run topolint: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

// writeModule materializes a throwaway module for the CLI to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixturemod\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanFile = `package clean

// Mean averages xs.
func Mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
`

const floatcmpFile = `package dirty

// Equal compares floats exactly.
func Equal(a, b float64) bool { return a == b }
`

const errcheckFile = `package dirty2

import "os"

// Drop discards the error.
func Drop(path string) { os.Remove(path) }
`

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean/clean.go": cleanFile})
	stdout, stderr, code := runTopolint(t, dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no output on a clean tree, got:\n%s", stdout)
	}
}

func TestFindingsExitOne(t *testing.T) {
	dir := writeModule(t, map[string]string{"dirty/dirty.go": floatcmpFile})
	stdout, _, code := runTopolint(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", code, stdout)
	}
	want := "dirty/dirty.go:4:40: [floatcmp]"
	if !strings.Contains(stdout, want) {
		t.Errorf("stdout missing %q:\n%s", want, stdout)
	}
}

func TestJSONOutputShape(t *testing.T) {
	dir := writeModule(t, map[string]string{"dirty/dirty.go": floatcmpFile})
	stdout, _, code := runTopolint(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.File != "dirty/dirty.go" || d.Line != 4 || d.Col == 0 || d.Analyzer != "floatcmp" || d.Message == "" {
		t.Errorf("unexpected diagnostic fields: %+v", d)
	}
}

func TestAnalyzerSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"dirty/dirty.go":   floatcmpFile,
		"dirty2/dirty2.go": errcheckFile,
	})
	stdout, _, code := runTopolint(t, dir, "-analyzers", "errcheck", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "[floatcmp]") {
		t.Errorf("floatcmp ran despite -analyzers errcheck:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[errcheck]") {
		t.Errorf("errcheck did not run:\n%s", stdout)
	}
}

func TestPackagePatternSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"dirty/dirty.go": floatcmpFile,
		"clean/clean.go": cleanFile,
	})
	if _, _, code := runTopolint(t, dir, "./clean"); code != 0 {
		t.Errorf("linting only ./clean: exit = %d, want 0", code)
	}
	if _, _, code := runTopolint(t, dir, "./dirty"); code != 1 {
		t.Errorf("linting only ./dirty: exit = %d, want 1", code)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean/clean.go": cleanFile})
	cases := [][]string{
		{"-analyzers", "nosuchanalyzer", "./..."},
		{"./no/such/dir/..."},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, stderr, code := runTopolint(t, dir, args...); code != 2 {
			t.Errorf("topolint %v: exit = %d, want 2; stderr:\n%s", args, code, stderr)
		}
	}
}

func TestListAnalyzers(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean/clean.go": cleanFile})
	stdout, _, code := runTopolint(t, dir, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "errcheck", "floatcmp", "seededrand",
		"hotalloc", "parallelpurity", "jsoncontract", "leakcheck"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

func TestBaselineWorkflow(t *testing.T) {
	dir := writeModule(t, map[string]string{"dirty/dirty.go": floatcmpFile})
	base := filepath.Join(dir, "baseline.json")

	// -update-baseline accepts the current findings and exits 0.
	_, stderr, code := runTopolint(t, dir, "-baseline", base, "-update-baseline", "./...")
	if code != 0 {
		t.Fatalf("-update-baseline exit = %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("expected 1 accepted finding, stderr:\n%s", stderr)
	}

	// The same tree now passes the gate.
	stdout, stderr, code := runTopolint(t, dir, "-baseline", base, "./...")
	if code != 0 {
		t.Fatalf("gate on baselined tree: exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined findings still printed:\n%s", stdout)
	}

	// A new finding (second exact-float comparison) still fails the gate,
	// and only the new finding is printed.
	extra := floatcmpFile + "\n// Same compares floats exactly, again.\nfunc Same(a, b float64) bool { return a == b }\n"
	if err := os.WriteFile(filepath.Join(dir, "dirty", "dirty.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, _, code = runTopolint(t, dir, "-baseline", base, "./...")
	if code != 1 {
		t.Fatalf("gate with a new finding: exit = %d, want 1; stdout:\n%s", code, stdout)
	}
	if got := strings.Count(stdout, "[floatcmp]"); got != 1 {
		t.Errorf("want exactly the 1 new finding past the baseline, got %d:\n%s", got, stdout)
	}
}

func TestBaselineErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean/clean.go": cleanFile})
	if _, _, code := runTopolint(t, dir, "-update-baseline", "./..."); code != 2 {
		t.Errorf("-update-baseline without -baseline: exit = %d, want 2", code)
	}
	if _, _, code := runTopolint(t, dir, "-baseline", filepath.Join(dir, "missing.json"), "./..."); code != 2 {
		t.Errorf("-baseline with a missing file: exit = %d, want 2", code)
	}
}
