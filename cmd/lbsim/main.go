// Command lbsim implements the paper's §5.1 evaluation mechanism: dump a
// load-balancing database from an instrumented run (+LBDump) and evaluate
// mapping strategies offline on the identical load scenario (+LBSim).
//
// Generate a dump from a built-in workload:
//
//	lbsim -dump lean.lbd -workload leanmd:128 -topo torus:16,8
//
// Simulate strategies on a dump:
//
//	lbsim -sim lean.lbd -topo torus:16,8 -strategy topolb,topocentlb,random
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/charm"
	"repro/internal/cliutil"
	"repro/internal/emulator"
	"repro/internal/lbdb"
	"repro/internal/partition"
)

func main() {
	dump := flag.String("dump", "", "instrument the workload and write an LB database to this file")
	sim := flag.String("sim", "", "simulate strategies on this LB database file")
	workload := flag.String("workload", "leanmd:64", "workload for -dump: leanmd:P | mesh2d:RX,RY | random:N,M")
	topoSpec := flag.String("topo", "torus:8,8", "topology: torus:.. | mesh:.. | hypercube:D")
	msg := flag.Float64("msg", 1e4, "message bytes per edge per iteration")
	iters := flag.Int("iters", 10, "instrumented iterations for -dump")
	strategies := flag.String("strategy", "topolb,topocentlb,random", "strategies for -sim")
	partName := flag.String("partition", "multilevel", "partitioner: multilevel | greedy")
	seed := flag.Int64("seed", 1, "seed")
	jsonOut := flag.Bool("json", false, "write the dump as JSON instead of gob")
	flag.Parse()

	topo, err := cliutil.ParseTopology(*topoSpec)
	fatalIf(err)
	var part partition.Partitioner
	switch *partName {
	case "multilevel":
		part = partition.Multilevel{Seed: *seed}
	case "greedy":
		part = partition.Greedy{}
	default:
		fatalIf(fmt.Errorf("unknown partitioner %q", *partName))
	}

	switch {
	case *dump != "":
		g, err := cliutil.ParsePattern(*workload, *msg, *seed)
		fatalIf(err)
		rt, err := charm.NewRuntime(charm.GraphApp{G: g}, emulator.DefaultMachine(topo))
		fatalIf(err)
		_, err = rt.Run(*iters)
		fatalIf(err)
		db, err := rt.Database()
		fatalIf(err)
		f, err := os.Create(*dump)
		fatalIf(err)
		if *jsonOut {
			fatalIf(db.DumpJSON(f))
		} else {
			fatalIf(db.Dump(f))
		}
		fatalIf(f.Close())
		fmt.Printf("dumped step %d: %d chares, %d comm records, %d procs -> %s\n",
			db.Step, len(db.Chares), len(db.Comms), db.NumProcs, *dump)

	case *sim != "":
		f, err := os.Open(*sim)
		fatalIf(err)
		var db *lbdb.Database
		if *jsonOut {
			db, err = lbdb.ReadJSON(f)
		} else {
			db, err = lbdb.Read(f)
		}
		closeErr := f.Close()
		fatalIf(err)
		fatalIf(closeErr)
		fmt.Printf("database: step %d, %d chares on %d procs\n", db.Step, len(db.Chares), db.NumProcs)
		fmt.Printf("%-22s  %12s  %10s  %10s  %10s\n", "strategy", "hop-bytes", "hops/byte", "imbalance", "migrations")
		strats, err := cliutil.ParseStrategies(*strategies, *seed)
		fatalIf(err)
		for _, strat := range strats {
			rep, err := charm.SimulateStep(db, topo, part, strat)
			fatalIf(err)
			fmt.Printf("%-22s  %12.4g  %10.4f  %10.3f  %10d\n",
				rep.Strategy, rep.HopBytes, rep.HopsPerByte, rep.Imbalance, rep.Migrations)
		}

	default:
		fmt.Fprintln(os.Stderr, "lbsim: one of -dump or -sim is required")
		flag.Usage()
		os.Exit(2)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
}
