package main

// The netsim suite pits the rewritten simulator core (typed events, flat
// heap + calendar queue, pooled packet/message state) against the frozen
// pre-rewrite implementation in internal/netsim/legacy. Both sides run
// the same workloads, and the cross-check tests guarantee they produce
// bit-identical statistics, so the ns/op ratio is a pure implementation
// speedup — no modeling change hides in it.

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/netsim/legacy"
	"repro/internal/topology"
)

// netsimCase is one workload with a legacy and a current implementation.
type netsimCase struct {
	name      string
	baseline  func(b *testing.B)
	optimized func(b *testing.B)
	events    int64 // engine events dispatched per op on the optimized side
	// baseEvents is the baseline side's event count when it differs from
	// the optimized side (wormhole cases, whose flit events have no legacy
	// counterpart); 0 means both sides dispatch `events`.
	baseEvents int64
}

// engineCase measures raw scheduler throughput: pending self-rescheduling
// timers dispatching total events. At pending >= the calendar threshold
// the new engine runs on the calendar queue; below it, the flat heap.
func engineCase(name string, pending, total int) netsimCase {
	c := netsimCase{name: fmt.Sprintf("Engine/%s", name), events: int64(total)}
	c.baseline = func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := &legacy.Engine{}
			left := total - pending
			var tick func()
			tick = func() {
				if left > 0 {
					left--
					eng.After(1e-6, tick)
				}
			}
			for j := 0; j < pending; j++ {
				eng.Schedule(float64(j)*1e-7, tick)
			}
			eng.Run()
		}
	}
	c.optimized = func(b *testing.B) {
		eng := &netsim.Engine{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Reset()
			left := total - pending
			var tick func()
			tick = func() {
				if left > 0 {
					left--
					eng.After(1e-6, tick)
				}
			}
			for j := 0; j < pending; j++ {
				eng.Schedule(float64(j)*1e-7, tick)
			}
			eng.Run()
		}
	}
	return c
}

// hotspotConfig is the packet-dense benchmark scenario: an 8x8 torus
// where every node sends `load` 4 KB messages (16 packets each) across
// the machine, saturating links near the hotspot diagonal.
func hotspotWorkload(load int) (sends func(send func(src, dst int, bytes float64))) {
	return func(send func(src, dst int, bytes float64)) {
		for a := 0; a < 64; a++ {
			for d := 1; d <= load; d++ {
				send(a, (a+d*7)%64, 4096)
			}
		}
	}
}

func hotspotCase(name string, load int, buffered bool) netsimCase {
	to := topology.MustTorus(8, 8)
	work := hotspotWorkload(load)
	buf := 0
	if buffered {
		buf = 4
	}
	c := netsimCase{name: name}

	// Count events once on the current engine; the legacy engine schedules
	// the identical event sequence (that is the cross-check contract).
	{
		eng := &netsim.Engine{}
		net, err := netsim.NewNetwork(eng, netsim.Config{
			Topology: to, LinkBandwidth: 1e8, LinkLatency: 1e-7,
			PacketSize: 256, BufferPackets: buf,
		})
		if err != nil {
			panic(err)
		}
		work(func(s, d int, bytes float64) { net.Send(s, d, bytes, nil) })
		eng.Run()
		c.events = eng.Processed()
	}

	c.baseline = func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := &legacy.Engine{}
			net, err := legacy.NewNetwork(eng, legacy.Config{
				Topology: to, LinkBandwidth: 1e8, LinkLatency: 1e-7,
				PacketSize: 256, BufferPackets: buf,
			})
			if err != nil {
				b.Fatal(err)
			}
			work(func(s, d int, bytes float64) { net.Send(s, d, bytes, nil) })
			eng.Run()
		}
	}
	c.optimized = func(b *testing.B) {
		eng := &netsim.Engine{}
		net, err := netsim.NewNetwork(eng, netsim.Config{
			Topology: to, LinkBandwidth: 1e8, LinkLatency: 1e-7,
			PacketSize: 256, BufferPackets: buf,
		})
		if err != nil {
			b.Fatal(err)
		}
		send := func(s, d int, bytes float64) { net.Send(s, d, bytes, nil) }
		run := func() {
			eng.Reset()
			work(send)
			eng.Run()
		}
		// Warm pools and queue storage. Two runs are required: the first
		// grows the pools to the peak in-flight population, but storage
		// freed in a different order can still regrow once on the second
		// pass. Steady state (0 allocs/op) starts at run three.
		run()
		run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	}
	return c
}

// wormholeCase measures the flit-level mode against the packet model on
// the same workload. There is no legacy wormhole, so "baseline" here is
// the current engine in packet mode — the ratio prices the extra
// fidelity (one event per flit per hop) rather than an implementation
// rewrite, and the events_per_sec columns stay honest per side.
func wormholeCase(name string, load int) netsimCase {
	to := topology.MustTorus(8, 8)
	work := hotspotWorkload(load)
	packetCfg := netsim.Config{
		Topology: to, LinkBandwidth: 1e8, LinkLatency: 1e-7, PacketSize: 1024,
	}
	wormCfg := packetCfg
	wormCfg.Mode = netsim.ModeWormhole
	wormCfg.FlitSize = 64
	c := netsimCase{name: name}

	count := func(cfg netsim.Config) int64 {
		eng := &netsim.Engine{}
		net, err := netsim.NewNetwork(eng, cfg)
		if err != nil {
			panic(err)
		}
		work(func(s, d int, bytes float64) { net.Send(s, d, bytes, nil) })
		eng.Run()
		return eng.Processed()
	}
	c.events = count(wormCfg)
	c.baseEvents = count(packetCfg)

	bench := func(cfg netsim.Config) func(b *testing.B) {
		return func(b *testing.B) {
			eng := &netsim.Engine{}
			net, err := netsim.NewNetwork(eng, cfg)
			if err != nil {
				b.Fatal(err)
			}
			send := func(s, d int, bytes float64) { net.Send(s, d, bytes, nil) }
			run := func() {
				eng.Reset()
				work(send)
				eng.Run()
			}
			// Two warm-up runs: see hotspotCase — steady state starts at
			// run three.
			run()
			run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		}
	}
	c.baseline = bench(packetCfg)
	c.optimized = bench(wormCfg)
	return c
}

func netsimCases(quick bool) []netsimCase {
	cs := []netsimCase{
		engineCase("sparse", 64, 100_000),
		engineCase("dense", 16384, 100_000),
		hotspotCase("Hotspot/load=4", 4, false),
		hotspotCase("Hotspot/load=16", 16, false),
		hotspotCase("Buffered/load=8", 8, true),
		wormholeCase("Wormhole/load=4", 4),
	}
	if !quick {
		cs = append(cs,
			hotspotCase("Hotspot/load=63", 63, false),
			hotspotCase("Buffered/load=32", 32, true),
			wormholeCase("Wormhole/load=16", 16),
		)
	}
	return cs
}

// smokeNetsimCases is the CI smoke subset: one engine case plus one case
// per zero-alloc family (packet, buffered, wormhole), so the smoke run
// both catches a broken bench path and enforces the steady-state
// zero-allocation contract on every hot path.
func smokeNetsimCases() []netsimCase {
	return []netsimCase{
		engineCase("sparse", 64, 10_000),
		hotspotCase("Hotspot/load=2", 2, false),
		hotspotCase("Buffered/load=2", 2, true),
		wormholeCase("Wormhole/load=2", 2),
	}
}

// zeroAllocPrefixes names the case families whose optimized side must be
// allocation-free in steady state: the packet, buffered, and wormhole hot
// paths run entirely on pooled state after warm-up. Engine/* cases are
// excluded — their workload allocates a tick closure per event by design.
//
// The //lint:hotpath annotations in internal/netsim and internal/parallel
// declare the same contract statically; cmd/benchjson/drift_test.go keeps
// the two lists in sync.
var zeroAllocPrefixes = []string{"Hotspot/", "Buffered/", "Wormhole/"}

// zeroAllocViolations returns a description per optimized result that
// belongs to a zero-alloc family yet allocated.
func zeroAllocViolations(results []Result) []string {
	var out []string
	for _, r := range results {
		if r.Mode != "optimized" || r.AllocsPerOp == 0 {
			continue
		}
		for _, p := range zeroAllocPrefixes {
			if len(r.Name) >= len(p) && r.Name[:len(p)] == p {
				out = append(out, fmt.Sprintf("%s: %d allocs/op (want 0)", r.Name, r.AllocsPerOp))
				break
			}
		}
	}
	return out
}

// runNetsimSuite measures every case in both modes and returns baseline
// results followed by optimized ones, with speedups and events/sec filled
// in on the optimized half. smoke selects the tiny CI subset.
func runNetsimSuite(quick, smoke bool) []Result {
	cs := netsimCases(quick)
	if smoke {
		cs = smokeNetsimCases()
	}
	measure := func(mode string, run func(c netsimCase) func(b *testing.B)) []Result {
		var out []Result
		for _, c := range cs {
			r := testing.Benchmark(run(c))
			res := Result{
				Name:        c.name,
				Mode:        mode,
				GOMAXPROCS:  1, // the simulator core is single-threaded by design
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Iterations:  r.N,
			}
			events := c.events
			if mode == "baseline" && c.baseEvents > 0 {
				events = c.baseEvents
			}
			if res.NsPerOp > 0 {
				res.EventsPerSec = float64(events) / (res.NsPerOp * 1e-9)
			}
			out = append(out, res)
		}
		return out
	}
	baseline := measure("baseline", func(c netsimCase) func(*testing.B) { return c.baseline })
	optimized := measure("optimized", func(c netsimCase) func(*testing.B) { return c.optimized })
	for i := range optimized {
		if base := baseline[i].NsPerOp; base > 0 && optimized[i].NsPerOp > 0 {
			optimized[i].Speedup = base / optimized[i].NsPerOp
		}
	}
	return append(baseline, optimized...)
}
