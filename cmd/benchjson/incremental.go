package main

// The incremental suite records the online remapping engine's headline
// claim: maintaining hop-bytes through core.IncrementalState costs
// O(deg(task)·log|E|) per delta, against the O(|E|) full
// core.HopBytes recompute an online loop would otherwise pay after
// every observation. "baseline" rows run the full recompute at each
// size; "optimized" rows apply one delta (load / comm / move mix) to a
// live state. RefineIncremental and the end-to-end topomapd session
// delta→remap round trip are recorded as optimized-only rows (they have
// no one-shot counterpart).

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/lbdb"
	"repro/internal/service"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// incCase is one (task mesh, machine) size point: a gx×gy task mesh
// placed blockwise on a px×py torus.
type incCase struct {
	gx, gy, px, py int
}

func (c incCase) tasks() int { return c.gx * c.gy }

func (c incCase) name() string { return fmt.Sprintf("DeltaApply/n=%d", c.tasks()) }

func (c incCase) build() (*taskgraph.Graph, topology.Topology, []int) {
	g := taskgraph.Mesh2D(c.gx, c.gy, 1e5)
	to := topology.MustTorus(c.px, c.py)
	m := make([]int, g.NumVertices())
	for v := range m {
		m[v] = v % to.Nodes()
	}
	return g, to, m
}

func incrementalCases(quick bool) []incCase {
	cs := []incCase{{128, 128, 16, 16}} // 16384 tasks
	if !quick {
		// The 100k-task headline the acceptance criteria track.
		cs = append(cs, incCase{317, 317, 32, 32}) // 100489 tasks
	}
	return cs
}

// incDelta is one pre-generated mutation, so the benchmark loop does no
// RNG work.
type incDelta struct {
	kind int // 0 = load, 1 = comm, 2 = move
	a, b int
	val  float64
	proc int
}

// makeDeltas draws a deterministic mix of load, comm-edge, and move
// mutations over the graph's existing structure.
func makeDeltas(g *taskgraph.Graph, procs, n int) []incDelta {
	rng := rand.New(rand.NewSource(7))
	out := make([]incDelta, n)
	for i := range out {
		v := rng.Intn(g.NumVertices())
		switch i % 3 {
		case 0:
			out[i] = incDelta{kind: 0, a: v, val: float64(rng.Intn(100))}
		case 1:
			nbrs, _ := g.Neighbors(v)
			if len(nbrs) == 0 {
				out[i] = incDelta{kind: 0, a: v, val: 1}
				continue
			}
			out[i] = incDelta{kind: 1, a: v, b: int(nbrs[rng.Intn(len(nbrs))]), val: float64(1 + rng.Intn(1000000))}
		default:
			out[i] = incDelta{kind: 2, a: v, proc: rng.Intn(procs)}
		}
	}
	return out
}

func applyIncDelta(s *core.IncrementalState, d incDelta) error {
	switch d.kind {
	case 0:
		return s.SetLoad(d.a, d.val)
	case 1:
		return s.SetComm(d.a, d.b, d.val)
	default:
		return s.MoveTask(d.a, d.proc)
	}
}

// deltaApplyBaseline measures the full-recompute path: one
// core.HopBytes sweep over every edge, the per-observation cost without
// the incremental engine.
func deltaApplyBaseline(c incCase) benchCase {
	return benchCase{name: c.name(), run: func(b *testing.B) {
		g, to, m := c.build()
		core.HopBytes(g, to, m) // warm the distance matrix
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.HopBytes(g, to, m)
		}
	}}
}

// deltaApplyOptimized measures one O(deg) delta against the live state.
func deltaApplyOptimized(c incCase) benchCase {
	return benchCase{name: c.name(), run: func(b *testing.B) {
		g, to, m := c.build()
		s, err := core.NewIncrementalState(g, to, m)
		if err != nil {
			b.Fatal(err)
		}
		deltas := makeDeltas(g, to.Nodes(), 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := applyIncDelta(s, deltas[i%len(deltas)]); err != nil {
				b.Fatal(err)
			}
		}
	}}
}

// refineIncrementalCase measures one budgeted refinement pass over a
// drifted state (optimized-only: the one-shot strategies solve a
// different problem and are benchmarked in the mapping suite).
func refineIncrementalCase(c incCase, budget int) benchCase {
	name := fmt.Sprintf("RefineIncremental/n=%d,budget=%d", c.tasks(), budget)
	return benchCase{name: name, run: func(b *testing.B) {
		g, to, m := c.build()
		s0, err := core.NewIncrementalState(g, to, m)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range makeDeltas(g, to.Nodes(), 2048) {
			if err := applyIncDelta(s0, d); err != nil {
				b.Fatal(err)
			}
		}
		opts := core.IncRefineOptions{MaxPasses: 1, MaxMigrations: budget}
		s0.Clone().RefineIncremental(opts) // warm-up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := s0.Clone()
			b.StartTimer()
			s.RefineIncremental(opts)
		}
	}}
}

// sessionRemapCase measures the end-to-end topomapd session round trip:
// POST a delta batch, apply it, speculatively refine, and (maybe) push.
func sessionRemapCase(tasks, procs int) benchCase {
	name := fmt.Sprintf("SessionRemap/n=%d", tasks)
	return benchCase{name: name, run: func(b *testing.B) {
		srv := service.NewServer(service.Config{MaxTasks: tasks + 16})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		rng := rand.New(rand.NewSource(3))
		db := &lbdb.Database{NumProcs: procs}
		for i := 0; i < tasks; i++ {
			db.Chares = append(db.Chares, lbdb.ChareStats{Load: float64(rng.Intn(10)), Proc: i % procs})
		}
		for i := 0; i < tasks; i++ {
			j := (i + 1) % tasks
			db.Comms = append(db.Comms, comm(i, j, float64(1+rng.Intn(100000))))
		}
		var spec bytes.Buffer
		fmt.Fprintf(&spec, `{"topology":"torus:%d,%d","db":`, isqrt(procs), procs/isqrt(procs))
		if err := db.DumpJSON(&spec); err != nil {
			b.Fatal(err)
		}
		spec.WriteString(`,"migration_budget":64,"refine_passes":1}`)
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", &spec)
		if err != nil {
			b.Fatal(err)
		}
		//lint:ignore errcheck benchmark teardown; a failed close cannot affect the measurement
		resp.Body.Close()
		if resp.StatusCode != 201 {
			b.Fatalf("session create: %d", resp.StatusCode)
		}

		batches := make([][]byte, 64)
		for i := range batches {
			var buf bytes.Buffer
			fmt.Fprintf(&buf, `{"deltas":[{"kind":"load","task":%d,"load":%d},{"kind":"comm","task":%d,"other":%d,"bytes":%d}]}`,
				rng.Intn(tasks), rng.Intn(20), i%tasks, (i+1)%tasks, 1+rng.Intn(1000000))
			batches[i] = buf.Bytes()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/sessions/s1/deltas", "application/json",
				bytes.NewReader(batches[i%len(batches)]))
			if err != nil {
				b.Fatal(err)
			}
			//lint:ignore errcheck benchmark teardown; a failed close cannot affect the measurement
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("deltas: %d", resp.StatusCode)
			}
		}
	}}
}

func comm(a, b int, bytes float64) lbdb.Comm {
	if a > b {
		a, b = b, a
	}
	return lbdb.Comm{From: int32(a), To: int32(b), Bytes: bytes}
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// runIncrementalSuite pairs each DeltaApply optimized row with its
// full-recompute baseline by name; refine and session rows are
// optimized-only.
func runIncrementalSuite(quick, smoke bool) []Result {
	cs := incrementalCases(quick || smoke)
	if smoke {
		cs = []incCase{{64, 64, 8, 8}} // 4096 tasks
	}
	var baseline, optimized []Result
	measure := func(mode string, c benchCase) Result {
		r := testing.Benchmark(c.run)
		return Result{
			Name:        c.name,
			Mode:        mode,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
	}
	for _, c := range cs {
		baseline = append(baseline, measure("baseline", deltaApplyBaseline(c)))
		opt := measure("optimized", deltaApplyOptimized(c))
		if base := baseline[len(baseline)-1].NsPerOp; base > 0 && opt.NsPerOp > 0 {
			opt.Speedup = base / opt.NsPerOp
		}
		optimized = append(optimized, opt)
	}
	budgets := []int{64}
	if !quick && !smoke {
		budgets = []int{0, 64, -1}
	}
	for _, c := range cs {
		for _, budget := range budgets {
			optimized = append(optimized, measure("optimized", refineIncrementalCase(c, budget)))
		}
	}
	sessTasks, sessProcs := 4096, 64
	if smoke {
		sessTasks, sessProcs = 1024, 16
	}
	optimized = append(optimized, measure("optimized", sessionRemapCase(sessTasks, sessProcs)))
	return append(baseline, optimized...)
}
