package main

// The static zero-alloc contract (//lint:hotpath annotations checked by
// topolint's hotalloc analyzer) and the dynamic one (zeroAllocPrefixes
// enforced by the netsim suite) describe the same hot paths. This test
// fails when either side drifts: an annotation added or removed without
// updating the bench case list, or a zero-alloc family with no case that
// actually measures it.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// hotpathRoots parses one package directory and returns the names of
// functions whose doc comment carries a //lint:hotpath annotation;
// methods are rendered "(*Recv).Name".
func hotpathRoots(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	noTests := func(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
	pkgs, err := parser.ParseDir(fset, dir, noTests, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var roots []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if !strings.HasPrefix(c.Text, "//lint:hotpath") {
						continue
					}
					name := fd.Name.Name
					if fd.Recv != nil && len(fd.Recv.List) == 1 {
						name = "(" + recvString(fd.Recv.List[0].Type) + ")." + name
					}
					roots = append(roots, name)
					break
				}
			}
		}
	}
	sort.Strings(roots)
	return roots
}

func recvString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return "*" + recvString(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvString(e.X)
	case *ast.IndexListExpr:
		return recvString(e.X)
	}
	return "?"
}

// TestHotpathAnnotationsMatchBenchCases pins the annotated root set. If a
// //lint:hotpath annotation is added or removed, this test forces the
// author to revisit zeroAllocPrefixes and the bench case lists so the
// dynamic guard keeps measuring what the static analyzer promises.
func TestHotpathAnnotationsMatchBenchCases(t *testing.T) {
	want := map[string][]string{
		// core's dynamic guard is TestMultilevelProposeZeroAlloc (the
		// propose sweep may allocate only the parallel.For closure).
		filepath.Join("..", "..", "internal", "core"):   {"(*mlRefiner).propose"},
		filepath.Join("..", "..", "internal", "netsim"): {"(*Engine).Run"},
		filepath.Join("..", "..", "internal", "parallel"): {
			"ArgMax", "ArgMin", "First", "For", "Map", "Reduce",
		},
		// sfc's dynamic guard is the geometric suite's encode/ zero-alloc
		// gate (geometricZeroAllocViolations), active in every run mode.
		filepath.Join("..", "..", "internal", "sfc"): {
			"HilbertDecode2", "HilbertDecode3", "HilbertEncode2", "HilbertEncode3",
			"MortonDecode2", "MortonDecode3", "MortonEncode2", "MortonEncode3",
		},
	}
	for dir, expect := range want {
		got := hotpathRoots(t, dir)
		if strings.Join(got, ",") != strings.Join(expect, ",") {
			t.Errorf("%s: //lint:hotpath roots = %v, want %v\n"+
				"annotations drifted: update zeroAllocPrefixes and the netsim bench cases to match, then this list",
				dir, got, expect)
		}
	}
}

// TestZeroAllocPrefixesCovered checks every zero-alloc family has at
// least one case in the full, quick, and smoke case lists, so no CI or
// recording mode can silently stop measuring a family.
func TestZeroAllocPrefixesCovered(t *testing.T) {
	lists := map[string][]netsimCase{
		"full":  netsimCases(false),
		"quick": netsimCases(true),
		"smoke": smokeNetsimCases(),
	}
	for listName, cs := range lists {
		for _, prefix := range zeroAllocPrefixes {
			found := false
			for _, c := range cs {
				if strings.HasPrefix(c.name, prefix) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s case list has no %q case; the zero-alloc guard cannot cover that family", listName, prefix)
			}
		}
	}
}

// TestGeometricEncodeGateCovered checks the geometric suite always
// carries encode/ rows (they are unconditional, including smoke) and the
// gate actually trips on an allocating encode row.
func TestGeometricEncodeGateCovered(t *testing.T) {
	found := false
	for _, c := range encodeCases() {
		if strings.HasPrefix(c.name, "encode/") {
			found = true
			break
		}
	}
	if !found {
		t.Error("geometric suite has no encode/ case; the curve zero-alloc gate covers nothing")
	}
	got := geometricZeroAllocViolations([]Result{
		{Name: "encode/hilbert2", Mode: "optimized", AllocsPerOp: 0},
		{Name: "encode/morton2", Mode: "optimized", AllocsPerOp: 3},
		{Name: "sfc/stencil9:64,64/torus:16,16", Mode: "optimized", AllocsPerOp: 99},
	})
	if len(got) != 1 || !strings.Contains(got[0], "encode/morton2") {
		t.Errorf("geometricZeroAllocViolations = %v, want exactly the encode/morton2 violation", got)
	}
}

// TestZeroAllocViolations exercises the guard logic itself: only
// optimized rows in a zero-alloc family trip it.
func TestZeroAllocViolations(t *testing.T) {
	results := []Result{
		{Name: "Engine/dense", Mode: "optimized", AllocsPerOp: 160},  // excluded family
		{Name: "Hotspot/load=4", Mode: "baseline", AllocsPerOp: 12},  // baseline side is exempt
		{Name: "Hotspot/load=4", Mode: "optimized", AllocsPerOp: 0},  // clean
		{Name: "Wormhole/load=4", Mode: "optimized", AllocsPerOp: 2}, // violation
	}
	got := zeroAllocViolations(results)
	if len(got) != 1 || !strings.Contains(got[0], "Wormhole/load=4: 2 allocs/op") {
		t.Errorf("zeroAllocViolations = %v, want exactly the Wormhole/load=4 violation", got)
	}
}
