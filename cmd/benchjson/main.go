// Command benchjson records the repo's performance trajectory as
// committed JSON, one suite per subsystem:
//
//   - suite "mapping" (BENCH_mapping.json): the strategy microbenchmarks,
//     "baseline" = distance matrix disabled at GOMAXPROCS=1 (the serial
//     virtual-Distance kernels), "optimized" = distance matrix + parallel
//     kernels at full width.
//   - suite "netsim" (BENCH_netsim.json): the discrete-event simulator,
//     "baseline" = the frozen pre-rewrite core in internal/netsim/legacy,
//     "optimized" = the typed-event engine with calendar queue and pooled
//     packet state. Optimized entries carry events_per_sec.
//   - suite "multilevel" (BENCH_multilevel.json): the hierarchical
//     mapper at scale, "baseline" = the flat two-phase pipeline
//     (partition + TopoLB on the quotient), "optimized" =
//     core.MultilevelMap. Optimized rows carry hop_bytes_ratio
//     (multilevel ÷ flat) where the flat pipeline completes; the
//     million-task headline row is optimized-only.
//   - suite "service" (BENCH_service.json): the topomapd HTTP service
//     under load, "cold" = every request a distinct job (computes),
//     "warm" = one job repeated (result-cache hits). Records QPS, p50/p99
//     latency, allocs/request, and cache hit rate per grid cell.
//   - suite "incremental" (BENCH_incremental.json): the online remapping
//     engine, "baseline" = a full core.HopBytes recompute per
//     observation, "optimized" = one O(deg) delta applied to a live
//     core.IncrementalState. RefineIncremental and the end-to-end
//     topomapd session delta→remap round trip are optimized-only rows.
//   - suite "geometric" (BENCH_geometric.json): the near-linear mapping
//     tier, "baseline" = the flat two-phase pipeline, "optimized" = the
//     sfc and rcb-sfc strategies plus the service's auto portfolio on the
//     same workloads, with hop_bytes_ratio against the flat baseline. The
//     curve-codec encode/ rows are gated to 0 allocs/op in every mode.
//   - suite "hier" (BENCH_hier.json): hierarchical machines, "baseline" =
//     the flat strategies run directly on the composite distance metric,
//     "optimized" = the two-phase constrained mapper (core.HierMap), with
//     hop_bytes_ratio (hier ÷ best flat) per size point.
//
// Usage:
//
//	benchjson [-suite mapping|netsim|multilevel|service|incremental|geometric|hier] [-out FILE] [-quick] [-smoke]
//
// Regenerate the matching BENCH_*.json after touching a suite's kernels;
// the speedup column of the optimized entries against their baseline
// counterparts is the number the ISSUE acceptance criteria track.
// Parallel speedups only show on multi-core hardware — the file records
// num_cpu so readers can tell a 1-core run apart.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Result is one benchmark × configuration measurement.
type Result struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Iterations   int     `json:"iterations"`
	Speedup      float64 `json:"speedup_vs_baseline,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// HopBytesRatio is multilevel ÷ flat hop-bytes on multilevel-suite
	// optimized rows: the quality cost of the hierarchical shortcut.
	HopBytesRatio float64 `json:"hop_bytes_ratio,omitempty"`
}

// Report is the top-level BENCH_mapping.json document. GOMAXPROCS and
// NumCPU record the recording machine, so a 1-CPU run (where parallel
// speedups cannot show) is machine-checkable from the committed file.
type Report struct {
	Command    string   `json:"command"`
	GoVersion  string   `json:"go_version"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Quick      bool     `json:"quick"`
	Results    []Result `json:"results"`
}

// benchCase is one named workload closed over its inputs.
type benchCase struct {
	name string
	run  func(b *testing.B)
}

// mapCase benchmarks strategy s on a rx×ry task mesh mapped to a rx×ry
// torus (the paper's benchmark pattern), warming up once so lazy
// distance-matrix construction is charged to setup.
func mapCase(name string, s core.Strategy, rx, ry int) benchCase {
	return benchCase{name: fmt.Sprintf("%s/p=%d", name, rx*ry), run: func(b *testing.B) {
		g := taskgraph.Mesh2D(rx, ry, 1e5)
		to := topology.MustTorus(rx, ry)
		if _, err := s.Map(g, to); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Map(g, to); err != nil {
				b.Fatal(err)
			}
		}
	}}
}

func refineCase(rx, ry int) benchCase {
	return benchCase{name: fmt.Sprintf("Refine/p=%d", rx*ry), run: func(b *testing.B) {
		g := taskgraph.Mesh2D(rx, ry, 1e5)
		to := topology.MustTorus(rx, ry)
		m0, err := (core.Random{Seed: 1}).Map(g, to)
		if err != nil {
			b.Fatal(err)
		}
		core.Refine(g, to, m0.Clone(), 1) // warm-up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := m0.Clone()
			core.Refine(g, to, m, 1)
		}
	}}
}

func hopBytesCase(rx, ry int) benchCase {
	return benchCase{name: fmt.Sprintf("HopBytes/p=%d", rx*ry), run: func(b *testing.B) {
		g := taskgraph.Mesh2D(rx, ry, 1e5)
		to := topology.MustTorus(rx, ry)
		m, err := (core.Random{Seed: 1}).Map(g, to)
		if err != nil {
			b.Fatal(err)
		}
		core.HopBytes(g, to, m) // warm-up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.HopBytes(g, to, m)
		}
	}}
}

func cases(quick bool) []benchCase {
	cs := []benchCase{
		mapCase("TopoLB", core.TopoLB{}, 8, 8),
		mapCase("TopoLB", core.TopoLB{}, 16, 16),
		mapCase("TopoLB", core.TopoLB{}, 32, 16),
		mapCase("TopoLB(order=1)", core.TopoLB{Order: core.OrderFirst}, 16, 16),
		mapCase("TopoLB(order=3)", core.TopoLB{Order: core.OrderThird}, 8, 8),
		mapCase("TopoCentLB", core.TopoCentLB{}, 16, 16),
		refineCase(16, 16),
		hopBytesCase(32, 32),
	}
	if !quick {
		cs = append(cs,
			mapCase("TopoLB", core.TopoLB{}, 32, 32),
			mapCase("TopoLB(order=3)", core.TopoLB{Order: core.OrderThird}, 16, 16),
			mapCase("TopoCentLB", core.TopoCentLB{}, 32, 32),
			hopBytesCase(64, 64),
		)
	}
	return cs
}

// runMode executes every case under one configuration and returns the
// measurements.
func runMode(mode string, quick bool) []Result {
	var out []Result
	for _, c := range cases(quick) {
		r := testing.Benchmark(c.run)
		out = append(out, Result{
			Name:        c.name,
			Mode:        mode,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		})
	}
	return out
}

func main() {
	suite := flag.String("suite", "mapping", "benchmark suite: mapping | netsim | multilevel | service | incremental | geometric | hier")
	out := flag.String("out", "", "output file (default BENCH_<suite>.json)")
	quick := flag.Bool("quick", false, "smaller sizes only (CI smoke)")
	smoke := flag.Bool("smoke", false, "netsim/multilevel/service suites: tiny CI subset, write nothing unless -out is set")
	flag.Parse()

	var results []Result
	switch *suite {
	case "mapping":
		results = runMappingSuite(*quick)
	case "netsim":
		results = runNetsimSuite(*quick, *smoke)
	case "multilevel":
		results = runMultilevelSuite(*quick, *smoke)
	case "incremental":
		results = runIncrementalSuite(*quick, *smoke)
	case "geometric":
		results = runGeometricSuite(*quick, *smoke)
	case "hier":
		results = runHierSuite(*quick, *smoke)
	case "service":
		// The service suite measures a load grid (QPS, latency percentiles,
		// cache hit rates), not ns/op micro-benchmarks, so it writes its own
		// report shape.
		if err := runServiceSuite(*smoke, *out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown suite %q\n", *suite)
		os.Exit(2)
	}
	// The hot-path zero-allocation contracts are part of their suites:
	// any gated optimized row that allocates in steady state is a
	// regression, whether the run is a smoke check or a full recording.
	var violations []string
	switch *suite {
	case "netsim":
		violations = zeroAllocViolations(results)
	case "geometric":
		violations = geometricZeroAllocViolations(results)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchjson: zero-alloc violation:", v)
		}
		os.Exit(1)
	}
	if *smoke && *out == "" {
		// Smoke runs are CI health checks: print the optimized rows and
		// leave the committed BENCH files alone.
		for _, r := range results {
			if r.Mode == "optimized" {
				fmt.Printf("%-24s %12.0f ns/op  %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
			}
		}
		fmt.Println("smoke ok (no file written; pass -out to record)")
		return
	}
	if *out == "" {
		*out = "BENCH_" + *suite + ".json"
	}

	rep := Report{
		Command:    "go run ./cmd/benchjson -suite " + *suite,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      *quick,
		Results:    results,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, r := range results {
		if r.Mode != "optimized" {
			continue
		}
		fmt.Printf("%-24s %12.0f ns/op  %8d allocs/op  speedup %.2fx\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.Speedup)
	}
	fmt.Println("wrote", *out)
}

// runMappingSuite runs the strategy microbenchmarks in the baseline
// (distance matrix off, GOMAXPROCS=1) and optimized configurations.
func runMappingSuite(quick bool) []Result {
	origProcs := runtime.GOMAXPROCS(0)

	runtime.GOMAXPROCS(1)
	prevCap := topology.SetDistanceMatrixCap(0)
	baseline := runMode("baseline", quick)

	topology.SetDistanceMatrixCap(prevCap)
	runtime.GOMAXPROCS(origProcs)
	optimized := runMode("optimized", quick)

	for i := range optimized {
		if base := baseline[i].NsPerOp; base > 0 && optimized[i].NsPerOp > 0 {
			optimized[i].Speedup = base / optimized[i].NsPerOp
		}
	}
	return append(baseline, optimized...)
}
