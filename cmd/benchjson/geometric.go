package main

// The geometric suite records the near-linear mapping tier: "baseline"
// is the flat two-phase pipeline (partition.Multilevel + TopoLB on the
// quotient — the same flatPlace the multilevel suite uses), "optimized"
// rows are the geometric strategies and the service's auto portfolio on
// the same workload. Row naming: the baseline row carries the bare case
// name; optimized rows prefix it with the strategy ("sfc/...",
// "rcb-sfc/...", "auto/..."), each carrying speedup and hop_bytes_ratio
// (strategy ÷ flat) against the case's baseline. The curve-codec
// microbenchmarks ("encode/...") are optimized-only and sit under the
// suite's zero-alloc gate: an encode hotpath that allocates fails the
// run, smoke or full.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/sfc"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// geoCase is one (pattern, machine) size point. flat gates the baseline
// row; auto gates the service-portfolio row (only where the job fits the
// service's task bound and the portfolio is worth timing end-to-end).
type geoCase struct {
	name    string
	pattern string
	topoStr string
	g       *taskgraph.Graph
	topo    topology.Topology
	coords  [][]float64
	flat    bool
	auto    bool
}

func newGeoCase(pattern, topoStr string, flat, auto bool) geoCase {
	g, err := cliutil.ParsePattern(pattern, 1e5, 1)
	if err != nil {
		panic(err)
	}
	topo, err := cliutil.ParseAnyTopology(topoStr)
	if err != nil {
		panic(err)
	}
	return geoCase{
		name:    pattern + "/" + topoStr,
		pattern: pattern,
		topoStr: topoStr,
		g:       g,
		topo:    topo,
		coords:  cliutil.PatternCoords(pattern, 1),
		flat:    flat,
		auto:    auto,
	}
}

// geometricCases grows from the service-sized jobs to the 262144-task
// stencil headline (the acceptance row: sfc/rcb-sfc ≥10× faster than the
// flat TopoLB pipeline at ≤1.3× its hop-bytes) and a million-task
// optimized-only point. Large graphs are built lazily by gating on quick.
func geometricCases(quick bool) []geoCase {
	cs := []geoCase{
		newGeoCase("stencil9:64,64", "torus:16,16", true, true),
		newGeoCase("stencil9:128,128", "torus:16,16", true, true),
	}
	if !quick {
		cs = append(cs,
			newGeoCase("rgg:65536,8", "torus:32,32", true, false),
			newGeoCase("stencil9:512,512", "torus:32,32", true, false),
			// p=65536 would need a 65536² distance matrix for the flat
			// pipeline; the near-linear tier runs it easily.
			newGeoCase("stencil9:1024,1024", "torus:64,32,32", false, false),
		)
	}
	return cs
}

// encodeCases are the curve-codec microbenchmarks: one op encodes a
// 4096-point batch, so per-op cost is the amortized per-point cost × 4096
// and the zero-alloc gate sees steady-state behavior. Every row must
// report 0 allocs/op.
func encodeCases() []benchCase {
	const batch = 4096
	const order2, order3 = 16, 12
	return []benchCase{
		{name: "encode/morton2", run: func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for v := uint32(0); v < batch; v++ {
					sink += sfc.MortonEncode2(v, v^0x2a)
				}
			}
			_ = sink
		}},
		{name: "encode/morton3", run: func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for v := uint32(0); v < batch; v++ {
					sink += sfc.MortonEncode3(v, v^0x2a, v^0x155)
				}
			}
			_ = sink
		}},
		{name: "encode/hilbert2", run: func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for v := uint32(0); v < batch; v++ {
					sink += sfc.HilbertEncode2(order2, v, v^0x2a)
				}
			}
			_ = sink
		}},
		{name: "encode/hilbert3", run: func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for v := uint32(0); v < batch; v++ {
					sink += sfc.HilbertEncode3(order3, v, v^0x2a, v^0x155)
				}
			}
			_ = sink
		}},
		{name: "encode/hilbert2-roundtrip", run: func(b *testing.B) {
			b.ReportAllocs()
			var sink uint32
			for i := 0; i < b.N; i++ {
				for v := uint32(0); v < batch; v++ {
					x, y := sfc.HilbertDecode2(order2, sfc.HilbertEncode2(order2, v, v^0x2a))
					sink += x + y
				}
			}
			_ = sink
		}},
	}
}

// benchResult converts one testing.Benchmark run to a Result row.
func benchResult(name, mode string, r testing.BenchmarkResult) Result {
	return Result{
		Name:        name,
		Mode:        mode,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

// placeRow benchmarks one geometric Placer on a case and derives speedup
// and hop-bytes ratio against the case's flat baseline.
func placeRow(name string, p core.Placer, c geoCase, baseNs, hbFlat float64) Result {
	var pl []int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := p.Place(c.g, c.topo)
			if err != nil {
				b.Fatal(err)
			}
			pl = out
		}
	})
	row := benchResult(name+"/"+c.name, "optimized", r)
	if baseNs > 0 && row.NsPerOp > 0 {
		row.Speedup = baseNs / row.NsPerOp
	}
	if hbFlat > 0 {
		row.HopBytesRatio = core.HopBytes(c.g, c.topo, pl) / hbFlat
	}
	return row
}

// autoRow drives the service's auto portfolio end-to-end over HTTP: each
// iteration posts the job with a fresh job seed, so every request misses
// the result cache and the row measures a full portfolio computation plus
// encoding. The hop-bytes ratio comes from the seed-1 response.
func autoRow(c geoCase, hbFlat float64) (Result, error) {
	srv := service.NewServer(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(seed int64) (*http.Response, error) {
		job := service.Job{
			Graph:    service.GraphSpec{Pattern: c.pattern, MsgBytes: 1e5, Seed: 1},
			Topology: c.topoStr,
			Strategy: "auto",
			Seed:     seed,
		}
		payload, err := json.Marshal(job)
		if err != nil {
			return nil, err
		}
		return ts.Client().Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(payload))
	}

	resp, err := post(1)
	if err != nil {
		return Result{}, err
	}
	var res struct {
		HopBytes float64 `json:"hop_bytes"`
		Auto     struct {
			Winner string `json:"winner"`
		} `json:"auto"`
	}
	err = json.NewDecoder(resp.Body).Decode(&res)
	//lint:ignore errcheck closing an httptest response body cannot fail in a way that affects the measurement
	resp.Body.Close()
	if err != nil {
		return Result{}, err
	}
	if resp.StatusCode != 200 {
		return Result{}, fmt.Errorf("auto %s: status %d", c.name, resp.StatusCode)
	}

	seed := int64(1)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seed++
			resp, err := post(seed)
			if err != nil {
				b.Fatal(err)
			}
			//lint:ignore errcheck closing an httptest response body cannot fail in a way that affects the measurement
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	row := benchResult("auto/"+c.name, "optimized", r)
	if hbFlat > 0 {
		row.HopBytesRatio = res.HopBytes / hbFlat
	}
	return row, nil
}

// runGeometricSuite measures the curve codecs and every size point:
// flat baseline where feasible, then sfc, rcb-sfc, and (on service-sized
// cases) the auto portfolio against it.
func runGeometricSuite(quick, smoke bool) []Result {
	var results []Result
	for _, c := range encodeCases() {
		results = append(results, benchResult(c.name, "optimized", testing.Benchmark(c.run)))
	}
	cs := geometricCases(quick || smoke)
	if smoke {
		cs = cs[:1]
	}
	for _, c := range cs {
		var baseNs, hbFlat float64
		if c.flat {
			var pl []int
			if _, err := flatPlace(c.g, c.topo); err != nil { // warm distance matrix
				fmt.Println("benchjson: flat", c.name, "failed:", err)
				continue
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := flatPlace(c.g, c.topo)
					if err != nil {
						b.Fatal(err)
					}
					pl = out
				}
			})
			baseNs = float64(r.T.Nanoseconds()) / float64(r.N)
			hbFlat = core.HopBytes(c.g, c.topo, pl)
			results = append(results, benchResult(c.name, "baseline", r))
		}
		results = append(results,
			placeRow("sfc", core.SFC{Coords: c.coords}, c, baseNs, hbFlat),
			placeRow("rcb-sfc", core.RCBSFC{Coords: c.coords}, c, baseNs, hbFlat))
		if c.auto && !smoke {
			row, err := autoRow(c, hbFlat)
			if err != nil {
				fmt.Println("benchjson: auto", c.name, "failed:", err)
				continue
			}
			results = append(results, row)
		}
	}
	return results
}

// geometricZeroAllocViolations enforces the curve-codec contract: every
// encode/ row must run allocation-free. This is the dynamic side of the
// //lint:hotpath annotations in internal/sfc.
func geometricZeroAllocViolations(results []Result) []string {
	var out []string
	for _, r := range results {
		if r.Mode == "optimized" && len(r.Name) >= 7 && r.Name[:7] == "encode/" && r.AllocsPerOp != 0 {
			out = append(out, fmt.Sprintf("%s: %d allocs/op on the curve encode hotpath, want 0", r.Name, r.AllocsPerOp))
		}
	}
	return out
}
