package main

// The service suite load-tests topomapd's engine end to end: an
// in-process HTTP server (httptest + keep-alive client, so the measured
// path includes routing, decoding, and response writing) driven over a
// strategy × size × concurrency grid in two modes:
//
//   - "cold": every request carries a distinct seed, so every request is
//     a distinct content key and must compute its mapping
//   - "warm": every request is the same job, so after one priming request
//     the whole run is served from the result cache
//
// The committed BENCH_service.json tracks QPS, p50/p99 latency, and
// allocs/request for both modes; warm_speedup on the warm entries is the
// cache leverage the ISSUE acceptance criteria track (>= 2x on
// repeated-topology workloads). Client-side work (request marshaling,
// response reads) runs in-process, so allocs/request is an upper bound on
// the server's own allocations.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// ServiceResult is one grid cell × mode measurement.
type ServiceResult struct {
	Name             string  `json:"name"` // strategy/p=N/conc=C
	Mode             string  `json:"mode"` // "cold" | "warm"
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Requests         int     `json:"requests"`
	QPS              float64 `json:"qps"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
	BytesPerRequest  float64 `json:"bytes_per_request"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	WarmSpeedup      float64 `json:"warm_speedup_vs_cold,omitempty"`
}

// ServiceReport is the top-level BENCH_service.json document. GOMAXPROCS
// and NumCPU record the recording machine (see Report).
type ServiceReport struct {
	Command    string          `json:"command"`
	GoVersion  string          `json:"go_version"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Smoke      bool            `json:"smoke"`
	Results    []ServiceResult `json:"results"`
}

// serviceCell is one point of the load grid.
type serviceCell struct {
	strategy string
	dim      int // dim x dim task mesh onto a dim x dim torus
	conc     int
}

func serviceCells(smoke bool) []serviceCell {
	// Sizes start at 12x12: below that the cheapest strategies compute in
	// ~100us and both modes just measure HTTP round-trip overhead.
	strategies := []string{"topolb", "topocentlb", "topolb1"}
	dims := []int{12, 16}
	concs := []int{1, 4, 16}
	if smoke {
		strategies = strategies[:1]
		dims = dims[:1]
		concs = []int{1, 4}
	}
	var cells []serviceCell
	for _, s := range strategies {
		for _, d := range dims {
			for _, c := range concs {
				cells = append(cells, serviceCell{strategy: s, dim: d, conc: c})
			}
		}
	}
	return cells
}

// jobPayload marshals the grid job for one seed.
func jobPayload(c serviceCell, seed int64) []byte {
	spec := service.Job{
		Graph:    service.GraphSpec{Pattern: fmt.Sprintf("mesh2d:%d,%d", c.dim, c.dim), MsgBytes: 1e5, Seed: seed},
		Topology: fmt.Sprintf("torus:%d,%d", c.dim, c.dim),
		Strategy: c.strategy,
		Seed:     seed,
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return buf
}

// drive fires total requests round-robin over payloads from conc client
// goroutines and returns wall time and sorted per-request latencies. Any
// non-200 response aborts the run: a load generator that silently counts
// errors as throughput would overstate QPS.
func drive(client *http.Client, url string, payloads [][]byte, total, conc int) (time.Duration, []time.Duration, error) {
	latencies := make([]time.Duration, total)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || firstErr.Load() != nil {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(payloads[i%len(payloads)]))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if resp.StatusCode != 200 {
					firstErr.CompareAndSwap(nil, fmt.Errorf("status %d", resp.StatusCode))
					return
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := firstErr.Load(); err != nil {
		return 0, nil, err.(error)
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	return elapsed, latencies, nil
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// measureCell runs one grid cell in one mode against a fresh server.
func measureCell(c serviceCell, mode string, total int) (ServiceResult, error) {
	srv := service.NewServer(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/map"

	var payloads [][]byte
	switch mode {
	case "cold":
		// Distinct seed per request: every request is a distinct content
		// key and must compute.
		payloads = make([][]byte, total)
		for i := range payloads {
			payloads[i] = jobPayload(c, int64(i+1))
		}
	case "warm":
		// One job repeated; prime the cache so the timed run is all hits.
		payloads = [][]byte{jobPayload(c, 1)}
		if _, _, err := drive(ts.Client(), url, payloads, 1, 1); err != nil {
			return ServiceResult{}, err
		}
	}

	before := srv.Snapshot()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	elapsed, latencies, err := drive(ts.Client(), url, payloads, total, c.conc)
	if err != nil {
		return ServiceResult{}, fmt.Errorf("%s/%s: %w", c.strategy, mode, err)
	}
	runtime.ReadMemStats(&m1)
	after := srv.Snapshot()

	res := ServiceResult{
		Name:             fmt.Sprintf("%s/p=%d/conc=%d", c.strategy, c.dim*c.dim, c.conc),
		Mode:             mode,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Requests:         total,
		QPS:              float64(total) / elapsed.Seconds(),
		P50Ms:            percentileMs(latencies, 0.50),
		P99Ms:            percentileMs(latencies, 0.99),
		AllocsPerRequest: float64(m1.Mallocs-m0.Mallocs) / float64(total),
		BytesPerRequest:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(total),
	}
	hits := after.ResultCache.Hits - before.ResultCache.Hits
	misses := after.ResultCache.Misses - before.ResultCache.Misses
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return res, nil
}

// runServiceSuite drives the whole grid and writes its own report file
// (the document shape differs from the micro-benchmark suites). In smoke
// mode nothing is written unless -out was given explicitly: CI runs the
// smoke to prove the path works, not to regenerate the committed numbers.
func runServiceSuite(smoke bool, out string) error {
	coldTotal, warmTotal := 160, 1600
	if smoke {
		coldTotal, warmTotal = 24, 120
	}

	var results []ServiceResult
	for _, c := range serviceCells(smoke) {
		cold, err := measureCell(c, "cold", coldTotal)
		if err != nil {
			return err
		}
		warm, err := measureCell(c, "warm", warmTotal)
		if err != nil {
			return err
		}
		if cold.QPS > 0 {
			warm.WarmSpeedup = warm.QPS / cold.QPS
		}
		results = append(results, cold, warm)
		fmt.Printf("%-28s cold %8.0f qps (p99 %6.2fms, %6.0f allocs/req)  warm %9.0f qps (hit rate %4.2f, speedup %6.1fx)\n",
			cold.Name, cold.QPS, cold.P99Ms, cold.AllocsPerRequest, warm.QPS, warm.CacheHitRate, warm.WarmSpeedup)
	}

	if smoke && out == "" {
		fmt.Println("smoke mode: no report written")
		return nil
	}
	if out == "" {
		out = "BENCH_service.json"
	}
	cmd := "go run ./cmd/benchjson -suite service"
	if smoke {
		cmd += " -smoke"
	}
	rep := ServiceReport{
		Command:    cmd,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Smoke:      smoke,
		Results:    results,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
