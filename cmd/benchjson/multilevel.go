package main

// The multilevel suite records the hierarchical mapper's scaling story:
// "baseline" is the flat two-phase pipeline (partition.Multilevel +
// TopoLB on the quotient, distance matrix allowed), "optimized" is
// core.MultilevelMap (coarsen → map → refine, closed-form distances
// only). Rows share a name across modes; the optimized row carries
// speedup and hop_bytes_ratio (multilevel ÷ flat) against its baseline
// counterpart. At the largest sizes the flat pipeline is infeasible —
// the distance matrix alone would exceed the materialization cap by two
// orders of magnitude — so those rows are optimized-only by design.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// mlBenchCase is one (task graph, machine) size point. flat gates the
// baseline rows: the flat pipeline only runs where it completes in
// reasonable time and under the distance-matrix cap.
type mlBenchCase struct {
	name string
	g    *taskgraph.Graph
	topo topology.Topology
	flat bool
}

// multilevelCases grows from a few thousand tasks to the million-task
// headline. Large graphs are built lazily by gating on quick so smoke
// and quick runs never pay for them.
func multilevelCases(quick bool) []mlBenchCase {
	cs := []mlBenchCase{
		{
			name: "stencil9:64,64/torus:16,16",
			g:    taskgraph.Stencil9(64, 64, 1e5),
			topo: topology.MustTorus(16, 16),
			flat: true,
		},
		{
			name: "stencil9:128,128/torus:32,16",
			g:    taskgraph.Stencil9(128, 128, 1e5),
			topo: topology.MustTorus(32, 16),
			flat: true,
		},
	}
	if !quick {
		cs = append(cs,
			mlBenchCase{
				name: "rgg:65536,8/torus:32,32",
				g:    taskgraph.RandomGeometricDeg(65536, 8, 1e5, 1),
				topo: topology.MustTorus(32, 32),
				flat: true,
			},
			mlBenchCase{
				name: "stencil9:256,256/torus:32,32",
				g:    taskgraph.Stencil9(256, 256, 1e5),
				topo: topology.MustTorus(32, 32),
				flat: true,
			},
			mlBenchCase{
				name: "stencil9:512,512/torus:16,16,16",
				g:    taskgraph.Stencil9(512, 512, 1e5),
				topo: topology.MustTorus(16, 16, 16),
				flat: true,
			},
			mlBenchCase{
				name: "stencil9:1024,1024/torus:64,32,32",
				g:    taskgraph.Stencil9(1024, 1024, 1e5),
				topo: topology.MustTorus(64, 32, 32),
				flat: false, // p=65536: the flat pipeline needs a 65536² matrix
			},
		)
	}
	return cs
}

// flatPlace is the baseline: the repo's flat two-phase pipeline expanded
// to a per-task placement.
func flatPlace(g *taskgraph.Graph, t topology.Topology) ([]int, error) {
	pr, err := partition.Multilevel{Seed: 1}.Partition(g, t.Nodes())
	if err != nil {
		return nil, err
	}
	q, err := partition.Quotient(g, pr)
	if err != nil {
		return nil, err
	}
	gm, err := core.TopoLB{}.Map(q, t)
	if err != nil {
		return nil, err
	}
	out := make([]int, g.NumVertices())
	for v, grp := range pr.Assign {
		out[v] = gm[grp]
	}
	return out, nil
}

// runMultilevelSuite measures every size point, pairing each optimized
// row with its baseline by name where the flat pipeline ran.
func runMultilevelSuite(quick, smoke bool) []Result {
	cs := multilevelCases(quick)
	if smoke {
		cs = cs[:1]
	}
	var results []Result
	for _, c := range cs {
		var baseNs, hbFlat float64
		if c.flat {
			var pl []int
			if _, err := flatPlace(c.g, c.topo); err != nil { // warm distance matrix
				fmt.Println("benchjson: flat", c.name, "failed:", err)
				continue
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := flatPlace(c.g, c.topo)
					if err != nil {
						b.Fatal(err)
					}
					pl = out
				}
			})
			baseNs = float64(r.T.Nanoseconds()) / float64(r.N)
			hbFlat = core.HopBytes(c.g, c.topo, pl)
			results = append(results, Result{
				Name:        c.name,
				Mode:        "baseline",
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				NsPerOp:     baseNs,
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Iterations:  r.N,
			})
		}
		var pl []int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := (core.MultilevelMap{}).Place(c.g, c.topo)
				if err != nil {
					b.Fatal(err)
				}
				pl = out
			}
		})
		row := Result{
			Name:        c.name,
			Mode:        "optimized",
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		if baseNs > 0 && row.NsPerOp > 0 {
			row.Speedup = baseNs / row.NsPerOp
		}
		if hbFlat > 0 {
			row.HopBytesRatio = core.HopBytes(c.g, c.topo, pl) / hbFlat
		}
		results = append(results, row)
	}
	return results
}
