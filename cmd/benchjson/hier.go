package main

// The hier suite records the hierarchical-machine story in two tiers.
// The graph-only tier is the acceptance comparison pinned by
// core.TestHierBeatsFlatOnStencil: "baseline" rows are the flat
// strategies in their default configuration run directly on the
// composite distance metric (the Hierarchy is an ordinary
// topology.Topology), the "optimized" row is the two-phase mapper
// (core.HierMap: capacity partition down the levels, leaf kernels,
// cross-leaf refinement), carrying hop_bytes_ratio (hier ÷ best flat)
// — the acceptance criterion is ratio ≤ 0.75 on the 2-pod stencil case.
// The geometric tier ("-geo" rows) re-runs the comparison with task
// coordinates injected everywhere, the way the service treats pattern
// jobs: the curve strategies are near-optimal there, and the hier-geo
// row documents how much the coordinate bisection front-end still wins.

import (
	"fmt"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/hiertopo"
	"repro/internal/taskgraph"
)

// hierCase is one (pattern, hierarchy) size point.
type hierCase struct {
	name   string
	g      *taskgraph.Graph
	h      *hiertopo.Hierarchy
	coords [][]float64
}

func newHierCase(pattern, spec string) hierCase {
	g, err := cliutil.ParsePattern(pattern, 1e5, 1)
	if err != nil {
		panic(err)
	}
	h, err := hiertopo.Parse(spec)
	if err != nil {
		panic(err)
	}
	return hierCase{
		name:   pattern + "/hier:" + spec,
		g:      g,
		h:      h,
		coords: cliutil.PatternCoords(pattern, 1),
	}
}

// hierCases: the acceptance-pinned ~4k-task stencil on the 2-pod/4-rack/
// 8-node machine, and (full runs only) a geometry-free random graph plus
// a ~64k-task stencil on a 16384-processor hierarchy where the
// effort-scaled capacity partition is what keeps the two-phase mapper
// ahead.
func hierCases(quick bool) []hierCase {
	cs := []hierCase{
		newHierCase("stencil9:80,48", "pod:2/rack:4/node:8:torus-2x4"),
	}
	if !quick {
		cs = append(cs,
			newHierCase("rgg:4096,8", "pod:2/rack:4/node:8:torus-2x4"),
			newHierCase("stencil9:288,228", "pod:4/rack:8/node:16:torus-4x8"),
		)
	}
	return cs
}

// hierRow benchmarks one placer on the hierarchy's composite metric and
// returns the row plus its mapping's composite hop-bytes.
func hierRow(name, mode string, p core.Placer, c hierCase) (Result, float64) {
	var pl []int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := p.Place(c.g, c.h)
			if err != nil {
				b.Fatal(err)
			}
			pl = out
		}
	})
	return benchResult(name+"/"+c.name, mode, r), hiertopo.HierHopBytes(c.g, c.h, pl)
}

// hierTier runs one comparison tier (a set of flat baselines against one
// hier configuration) and appends its rows, with the hier row carrying
// speedup and hop-bytes ratio against the tier's best flat baseline.
func hierTier(results []Result, c hierCase, hierName string, hier core.Placer,
	flats []struct {
		name string
		p    core.Placer
	}) []Result {
	bestHB, bestNs := 0.0, 0.0
	for _, f := range flats {
		row, hb := hierRow(f.name, "baseline", f.p, c)
		results = append(results, row)
		if bestHB <= 0 || hb < bestHB {
			bestHB, bestNs = hb, row.NsPerOp
		}
	}
	row, hb := hierRow(hierName, "optimized", hier, c)
	if bestNs > 0 && row.NsPerOp > 0 {
		row.Speedup = bestNs / row.NsPerOp
	}
	if bestHB > 0 {
		row.HopBytesRatio = hb / bestHB
	}
	fmt.Printf("benchjson: %s %s: hop-bytes ratio %.3f vs best flat\n", hierName, c.name, row.HopBytesRatio)
	return append(results, row)
}

// runHierSuite measures each size point: the graph-only acceptance tier
// always, and the coordinate-informed tier where the pattern has
// geometry.
func runHierSuite(quick, smoke bool) []Result {
	var results []Result
	cs := hierCases(quick || smoke)
	if smoke {
		cs = cs[:1]
	}
	type flat = struct {
		name string
		p    core.Placer
	}
	for _, c := range cs {
		results = hierTier(results, c, "hier", core.HierMap{}, []flat{
			{"flat-sfc", core.SFC{}},
			{"flat-rcb-sfc", core.RCBSFC{}},
			{"flat-multilevel", core.MultilevelMap{}},
		})
		if c.coords != nil {
			results = hierTier(results, c, "hier-geo", core.HierMap{Coords: c.coords}, []flat{
				{"flat-sfc-geo", core.SFC{Coords: c.coords}},
				{"flat-rcb-sfc-geo", core.RCBSFC{Coords: c.coords}},
			})
		}
	}
	return results
}
