// Command topomapd serves topology-aware mapping jobs over HTTP/JSON: a
// long-running front end for the repository's strategy, metrics, and
// netsim kernels with cross-request caching, request coalescing, sharded
// worker pools, bounded admission control, and live remapping sessions
// (see internal/service).
//
// Endpoints:
//
//	POST   /v1/map                  one job, synchronous
//	POST   /v1/batch                {"jobs":[...]}; results in job order
//	POST   /v1/jobs                 async submit -> {"id":...}
//	GET    /v1/jobs/{id}            poll / fetch (fetch consumes the result)
//	POST   /v1/sessions             register a live remapping session
//	GET    /v1/sessions/{id}        session snapshot
//	DELETE /v1/sessions/{id}        close a session
//	POST   /v1/sessions/{id}/deltas stream load/comm/churn deltas
//	GET    /v1/sessions/{id}/watch  long-poll for pushed remaps
//	GET    /stats                   service + session + cache counters
//	GET    /healthz                 liveness
//
// Example:
//
//	topomapd -addr :8723 &
//	curl -s localhost:8723/v1/map -d '{
//	  "graph":    {"pattern": "mesh2d:8,8"},
//	  "topology": "torus:8,8",
//	  "strategy": "topolb"
//	}'
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: session watchers
// receive a terminal {"event":"shutdown"} JSON event, in-flight requests
// finish, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	shards := flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS, capped at 16)")
	workers := flag.Int("workers", 1, "workers per shard")
	queue := flag.Int("queue", 256, "admission bound: max queued+running computations (429 beyond)")
	maxTasks := flag.Int("max-tasks", 16384, "largest accepted task count per job or session")
	maxBatch := flag.Int("max-batch", 256, "largest accepted batch")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache entry bound (-1 disables)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache byte bound")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compute timeout")
	maxSessions := flag.Int("max-sessions", 64, "live remapping session bound (LRU eviction beyond)")
	watchTimeout := flag.Duration("watch-timeout", 30*time.Second, "session watch long-poll window")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain window")
	flag.Parse()

	srv := service.NewServer(service.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		MaxTasks:        *maxTasks,
		MaxBatch:        *maxBatch,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		RequestTimeout:  *timeout,
		MaxSessions:     *maxSessions,
		WatchTimeout:    *watchTimeout,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("topomapd: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "topomapd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("topomapd: %v, shutting down\n", sig)
	}

	// Stop the service first: active watch long-polls resolve with a
	// terminal {"event":"shutdown"} body, workers drain, new work gets
	// 503. Then close the listener, waiting for in-flight handlers.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "topomapd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("topomapd: bye")
}
