// Command topomapd serves topology-aware mapping jobs over HTTP/JSON: a
// long-running front end for the repository's strategy, metrics, and
// netsim kernels with cross-request caching, request coalescing, sharded
// worker pools, and bounded admission control (see internal/service).
//
// Endpoints:
//
//	POST /v1/map        one job, synchronous
//	POST /v1/batch      {"jobs":[...]}; results in job order
//	POST /v1/jobs       async submit -> {"id":...}
//	GET  /v1/jobs/{id}  poll / fetch (fetch consumes the result)
//	GET  /stats         service + cache + engine-pool counters
//	GET  /healthz       liveness
//
// Example:
//
//	topomapd -addr :8723 &
//	curl -s localhost:8723/v1/map -d '{
//	  "graph":    {"pattern": "mesh2d:8,8"},
//	  "topology": "torus:8,8",
//	  "strategy": "topolb"
//	}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	shards := flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS, capped at 16)")
	workers := flag.Int("workers", 1, "workers per shard")
	queue := flag.Int("queue", 256, "admission bound: max queued+running computations (429 beyond)")
	maxTasks := flag.Int("max-tasks", 16384, "largest accepted task count per job")
	maxBatch := flag.Int("max-batch", 256, "largest accepted batch")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache entry bound (-1 disables)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache byte bound")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compute timeout")
	flag.Parse()

	srv := service.NewServer(service.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		MaxTasks:        *maxTasks,
		MaxBatch:        *maxBatch,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		RequestTimeout:  *timeout,
	})
	defer srv.Close()

	fmt.Printf("topomapd: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "topomapd:", err)
		os.Exit(1)
	}
}
