package topomap

import (
	"repro/internal/topology"
	"repro/internal/viz"
)

// RenderPlacement draws a bijective mapping on a mesh/torus machine as an
// ASCII grid (one cell per processor showing the task it hosts).
func RenderPlacement(t Topology, m Mapping) (string, error) {
	co, ok := t.(topology.Coordinated)
	if !ok {
		return "", errNotGrid(t)
	}
	return viz.RenderPlacement(co, m)
}

// RenderHeat draws per-processor values on a 2D machine as a shaded grid.
func RenderHeat(t Topology, values []float64) (string, error) {
	co, ok := t.(topology.Coordinated)
	if !ok {
		return "", errNotGrid(t)
	}
	return viz.RenderHeat(co, values)
}

// Histogram renders values as ASCII bars over equal-width bins.
func Histogram(values []float64, buckets, barWidth int) string {
	return viz.Histogram(values, buckets, barWidth)
}

type notGridError struct{ name string }

func (e notGridError) Error() string {
	return "topomap: " + e.name + " is not a mesh/torus machine"
}

func errNotGrid(t Topology) error { return notGridError{name: t.Name()} }
