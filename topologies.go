package topomap

import (
	"repro/internal/hiertopo"
	"repro/internal/topology"
)

// Topology is an interconnection network: node count, adjacency, and
// shortest-path distance.
type Topology = topology.Topology

// Router is a Topology with deterministic per-link routing (required by
// the network simulator and the machine emulator).
type Router = topology.Router

// Mesh is an N-dimensional mesh topology.
type Mesh = topology.Mesh

// Torus is an N-dimensional torus topology (BlueGene/L's network).
type Torus = topology.Torus

// Hypercube is a binary hypercube topology.
type Hypercube = topology.Hypercube

// FatTree is a k-ary fat-tree topology.
type FatTree = topology.FatTree

// GraphTopology is an arbitrary network given by explicit edges.
type GraphTopology = topology.Graph

// NewMesh constructs an N-dimensional mesh, e.g. NewMesh(8, 8, 8).
func NewMesh(dims ...int) (*Mesh, error) { return topology.NewMesh(dims...) }

// NewTorus constructs an N-dimensional torus, e.g. NewTorus(16, 16, 16).
func NewTorus(dims ...int) (*Torus, error) { return topology.NewTorus(dims...) }

// NewHypercube constructs a hypercube of the given dimension.
func NewHypercube(dim int) (*Hypercube, error) { return topology.NewHypercube(dim) }

// NewFatTree constructs a k-ary fat-tree with the given levels.
func NewFatTree(arity, levels int) (*FatTree, error) { return topology.NewFatTree(arity, levels) }

// NewGraphTopology constructs an arbitrary topology from undirected edges.
func NewGraphTopology(n int, edges [][2]int) (*GraphTopology, error) {
	return topology.NewGraph(n, edges)
}

// MeanDistance returns the exact mean internode distance of t.
func MeanDistance(t Topology) float64 { return topology.MeanDistance(t) }

// Diameter returns the largest pairwise distance of t.
func Diameter(t Topology) int { return topology.Diameter(t) }

// Hierarchy is a hierarchical machine description (pods of racks of
// nodes of leaf networks) with a composite distance metric: intra-leaf
// pairs pay the exact leaf distance, cross-leaf pairs pay the cost of
// the outermost level their ranks diverge at (default 10× per level
// outward). Usable anywhere a Topology is accepted; pair it with the
// HierMap strategy for two-phase constrained mapping.
type Hierarchy = hiertopo.Hierarchy

// HierarchyLevel describes one level of a Hierarchy, outermost first.
type HierarchyLevel = hiertopo.Level

// ParseHierarchy parses the compact spec, e.g.
// "pod:2/rack:4/node:8:torus-2x4" (levels outermost first, optional
// "@cost" suffix per level, optional leaf topology bound to the
// innermost segment — see internal/hiertopo).
func ParseHierarchy(spec string) (*Hierarchy, error) { return hiertopo.Parse(spec) }

// NewHierarchy constructs a hierarchy from explicit levels and a leaf
// topology spec ("" binds single-processor leaves).
func NewHierarchy(levels []HierarchyLevel, leafSpec string) (*Hierarchy, error) {
	return hiertopo.New(levels, leafSpec)
}

// Dragonfly is the modern hierarchical low-diameter topology (groups of
// fully connected routers joined by global links).
type Dragonfly = topology.Dragonfly

// NewDragonfly constructs the balanced Kim–Dally dragonfly with the given
// routers per group and global links per router (groups = a·h + 1).
func NewDragonfly(routersPerGroup, globalPerRouter int) (*Dragonfly, error) {
	return topology.NewDragonfly(routersPerGroup, globalPerRouter)
}
