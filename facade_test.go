package topomap_test

import (
	"math"
	"testing"

	topomap "repro"
)

func TestFacadeTopologyConstructors(t *testing.T) {
	if m, err := topomap.NewMesh(4, 4); err != nil || m.Nodes() != 16 {
		t.Errorf("NewMesh: %v", err)
	}
	if h, err := topomap.NewHypercube(5); err != nil || h.Nodes() != 32 {
		t.Errorf("NewHypercube: %v", err)
	}
	if f, err := topomap.NewFatTree(4, 2); err != nil || f.Nodes() != 16 {
		t.Errorf("NewFatTree: %v", err)
	}
	if d, err := topomap.NewDragonfly(4, 2); err != nil || d.Nodes() != 36 {
		t.Errorf("NewDragonfly: %v", err)
	}
	if g, err := topomap.NewGraphTopology(3, [][2]int{{0, 1}, {1, 2}}); err != nil || g.Nodes() != 3 {
		t.Errorf("NewGraphTopology: %v", err)
	}
	torus, err := topomap.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topomap.MeanDistance(torus) != 2 || topomap.Diameter(torus) != 4 {
		t.Error("metric helpers wrong")
	}
}

func TestFacadePatternConstructors(t *testing.T) {
	cases := map[string]*topomap.TaskGraph{
		"mesh3d":    topomap.Mesh3DPattern(2, 2, 2, 10),
		"ring":      topomap.RingPattern(5, 10),
		"torus2d":   topomap.Torus2DPattern(3, 3, 10),
		"alltoall":  topomap.AllToAllPattern(4, 10),
		"random":    topomap.RandomGraph(10, 20, 1, 5, 1),
		"stencil9":  topomap.Stencil9Pattern(3, 3, 10),
		"transpose": topomap.TransposePattern(3, 10),
		"bintree":   topomap.BinaryTreePattern(7, 10),
		"butterfly": topomap.ButterflyPattern(3, 10),
		"wavefront": topomap.WavefrontPattern(3, 3, 10),
	}
	for name, g := range cases {
		if g == nil || g.NumVertices() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
	b := topomap.NewBuilder(2)
	g := b.AddEdge(0, 1, 3).Build("pair")
	if g.TotalComm() != 3 {
		t.Error("builder facade broken")
	}
}

func TestFacadeGraphTransforms(t *testing.T) {
	g := topomap.RingPattern(6, 10)
	s := topomap.ScaleGraph(g, 3)
	if s.TotalComm() != 3*g.TotalComm() {
		t.Error("ScaleGraph wrong")
	}
	o, err := topomap.OverlayGraphs(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.TotalComm()-4*g.TotalComm()) > 1e-9 {
		t.Error("OverlayGraphs wrong")
	}
}

func TestFacadeRefine(t *testing.T) {
	g := topomap.Mesh2DPattern(4, 4, 100)
	machine, err := topomap.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := (topomap.Random{Seed: 3}).Map(g, machine)
	if err != nil {
		t.Fatal(err)
	}
	before := topomap.HopBytes(g, machine, m)
	topomap.Refine(g, machine, m, 8)
	if after := topomap.HopBytes(g, machine, m); after > before {
		t.Errorf("Refine increased hop-bytes: %v -> %v", before, after)
	}
}

func TestFacadeBaselineStrategies(t *testing.T) {
	g := topomap.Mesh2DPattern(4, 4, 100)
	machine, err := topomap.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []topomap.Strategy{
		topomap.Bokhari{Seed: 1, Jumps: 1},
		topomap.Annealing{Seed: 1, Levels: 5, MovesPerLevel: 50},
		topomap.Genetic{Seed: 1, Population: 10, Generations: 5},
		topomap.Snake{TaskDims: []int{4, 4}},
		topomap.Hybrid{Block: []int{2, 2}, Seed: 1},
		topomap.TopoLB{Order: topomap.OrderFirst},
		topomap.TopoLB{Order: topomap.OrderThird},
	} {
		m, err := s.Map(g, machine)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := m.Validate(g, machine); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
	cube, err := topomap.NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (topomap.ARM{Seed: 1}).Map(g, cube); err != nil {
		t.Errorf("ARM: %v", err)
	}
}

func TestFacadeRuntimeAndLBSim(t *testing.T) {
	g := topomap.Mesh2DPattern(8, 8, 1e4)
	torus, err := topomap.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := topomap.NewRuntime(topomap.GraphApp{G: g}, topomap.DefaultMachine(torus),
		topomap.WithWorkUnitTime(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(3); err != nil {
		t.Fatal(err)
	}
	db, err := rt.Database()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := topomap.SimulateLBStep(db, torus, topomap.Multilevel{Seed: 1}, topomap.TopoLB{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HopsPerByte <= 0 {
		t.Error("no hops/byte in report")
	}
	// WithInitialPlacement path.
	rt2, err := topomap.NewRuntime(topomap.GraphApp{G: g}, topomap.DefaultMachine(torus),
		topomap.WithInitialPlacement(make([]int, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Placement()[0] != 0 {
		t.Error("initial placement not applied")
	}
}

func TestFacadeMPIWorld(t *testing.T) {
	w, err := topomap.NewMPIWorld(16)
	if err != nil {
		t.Fatal(err)
	}
	w.Cart2D(4, 4, 1e4).ComputeAll(1e-6).AllReduce(8)
	torus, err := topomap.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	job, err := w.Launch(topomap.DefaultMachine(torus))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Rebalance(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeChareExec(t *testing.T) {
	torus, err := topomap.NewTorus(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	entries := []topomap.ChareEntry{
		func(ctx *topomap.ChareCtx, m topomap.ChareMsg) { ctx.Send(1, 100, nil) },
		func(ctx *topomap.ChareCtx, m topomap.ChareMsg) { done = true },
	}
	ex, err := topomap.NewChareExec(entries, []int{0, 1}, topomap.SimConfig{
		Topology: torus, LinkBandwidth: 1e8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Inject(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	ex.Run()
	if !done {
		t.Error("message-driven chain did not complete")
	}
}

func TestFacadeVisualization(t *testing.T) {
	g := topomap.Mesh2DPattern(2, 2, 10)
	machine, err := topomap.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := topomap.Identity{}.Map(g, machine)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := topomap.RenderPlacement(machine, m)
	if err != nil {
		t.Fatal(err)
	}
	if grid != "0 1\n2 3\n" {
		t.Errorf("grid = %q", grid)
	}
	heat, err := topomap.RenderHeat(machine, []float64{0, 1, 0.5, 1})
	if err != nil || heat == "" {
		t.Errorf("heat: %v %q", err, heat)
	}
	if out := topomap.Histogram([]float64{1, 2, 3}, 3, 10); out == "" {
		t.Error("empty histogram")
	}
	cube, err := topomap.NewHypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topomap.RenderPlacement(cube, m); err == nil {
		t.Error("non-grid machine: want error")
	}
}
