// Package topomap is a topology-aware task-mapping library for large
// parallel machines, reproducing Agarwal, Sharma & Kalé, "Topology-aware
// task mapping for reducing communication contention on large parallel
// machines" (IPDPS 2006).
//
// A parallel program is a weighted graph of communicating tasks; the
// machine is a network topology (3D torus on BlueGene/L class machines).
// Mapping communicating tasks to nearby processors reduces hop-bytes —
// bytes weighted by the links they cross — which lowers per-link load and
// therefore contention, message latency, and execution time.
//
// # Quick start
//
//	tasks := topomap.Mesh2DPattern(16, 16, 1<<20) // 256 tasks, 1 MiB msgs
//	machine := topomap.NewTorus(16, 16)           // 256-node 2D torus
//	m, err := topomap.TopoLB{}.Map(tasks, machine)
//	if err != nil { ... }
//	fmt.Println(topomap.HopsPerByte(tasks, machine, m)) // ~1.0
//
// For applications with more tasks than processors, use the two-phase
// pipeline (partition → quotient → map) via MapTasks, or drive the full
// measurement-based runtime in the charm-style Runtime.
//
// The library is organized as:
//
//   - mapping strategies and the hop-bytes metric (this package's
//     Strategy values: TopoLB, TopoCentLB, RefineTopoLB, Random, Identity)
//   - network topologies: NewMesh, NewTorus, NewHypercube, NewFatTree,
//     NewGraphTopology
//   - task graphs: Builder plus Mesh2DPattern/Mesh3DPattern/RingPattern/
//     LeanMD and friends
//   - partitioners: Multilevel (METIS-style) and Greedy
//   - performance models: the discrete-event network simulator
//     (SimConfig/ReplayTrace) and the contention-based machine emulator
//     (Machine/DefaultMachine)
package topomap

import (
	"repro/internal/core"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Mapping assigns each task to a processor: Mapping[task] = processor.
type Mapping = core.Mapping

// Strategy maps a task graph onto a topology.
type Strategy = core.Strategy

// TopoLB is the paper's main heuristic: place the most placement-critical
// task first, on its cheapest free processor (see internal/core).
type TopoLB = core.TopoLB

// Order selects TopoLB's estimation function.
type Order = core.Order

// Estimation orders for TopoLB (first, second — the default — and third).
const (
	OrderFirst  = core.OrderFirst
	OrderSecond = core.OrderSecond
	OrderThird  = core.OrderThird
)

// TopoCentLB is the simpler greedy comparator strategy.
type TopoCentLB = core.TopoCentLB

// RefineTopoLB wraps a base strategy with pairwise-swap refinement.
type RefineTopoLB = core.RefineTopoLB

// Random places tasks by a seeded random permutation (the baseline).
type Random = core.Random

// Identity places task i on processor i (the isomorphism mapping for
// machine-shaped task patterns).
type Identity = core.Identity

// HopBytes returns Σ c_ab · d(P(a), P(b)) — the paper's metric.
func HopBytes(g *taskgraph.Graph, t topology.Topology, m Mapping) float64 {
	return core.HopBytes(g, t, m)
}

// HopsPerByte returns HopBytes normalized by total communication volume.
func HopsPerByte(g *taskgraph.Graph, t topology.Topology, m Mapping) float64 {
	return core.HopsPerByte(g, t, m)
}

// Refine improves a mapping in place by hop-byte-reducing swaps and
// returns the number of swaps performed.
func Refine(g *taskgraph.Graph, t topology.Topology, m Mapping, maxPasses int) int {
	return core.Refine(g, t, m, maxPasses)
}

// ExpectedRandomHopsPerByte returns the analytic mean internode distance —
// what random placement converges to (√p/2 on even 2D tori, 3·∛p/4 on
// even 3D tori).
func ExpectedRandomHopsPerByte(t topology.Topology) float64 {
	return core.ExpectedRandomHopsPerByte(t)
}
