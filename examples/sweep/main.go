// Sweep explores how machine topology changes the value of topology-aware
// mapping: the same 64-task Jacobi pattern is mapped onto a 2D torus, 3D
// torus, 3D mesh, hypercube, and fat-tree, comparing TopoLB with random
// placement on each. Low-diameter networks (hypercube, fat-tree) leave
// little for a mapper to win — exactly the paper's motivation for
// targeting torus/mesh machines.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	tasks := topomap.Mesh2DPattern(8, 8, 1e5)

	type machine struct {
		name string
		topo topomap.Topology
	}
	var machines []machine
	if t, err := topomap.NewTorus(8, 8); err == nil {
		machines = append(machines, machine{"2D torus", t})
	}
	if t, err := topomap.NewTorus(4, 4, 4); err == nil {
		machines = append(machines, machine{"3D torus", t})
	}
	if t, err := topomap.NewMesh(4, 4, 4); err == nil {
		machines = append(machines, machine{"3D mesh", t})
	}
	if t, err := topomap.NewHypercube(6); err == nil {
		machines = append(machines, machine{"hypercube", t})
	}
	if t, err := topomap.NewFatTree(4, 3); err == nil {
		machines = append(machines, machine{"fat-tree", t})
	}

	fmt.Printf("%-10s  %9s  %9s  %9s  %9s  %8s\n",
		"machine", "diameter", "E[rand]", "TopoLB", "random", "win")
	for _, mc := range machines {
		mT, err := (topomap.TopoLB{}).Map(tasks, mc.topo)
		if err != nil {
			log.Fatal(err)
		}
		mR, err := (topomap.Random{Seed: 11}).Map(tasks, mc.topo)
		if err != nil {
			log.Fatal(err)
		}
		hT := topomap.HopsPerByte(tasks, mc.topo, mT)
		hR := topomap.HopsPerByte(tasks, mc.topo, mR)
		fmt.Printf("%-10s  %9d  %9.2f  %9.3f  %9.3f  %7.1fx\n",
			mc.name, topomap.Diameter(mc.topo),
			topomap.ExpectedRandomHopsPerByte(mc.topo), hT, hR, hR/hT)
	}
}
