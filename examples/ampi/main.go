// AMPI demonstrates the Adaptive-MPI-style veneer: an MPI-like program —
// 256 virtual ranks doing a Cartesian halo exchange, a periodic allreduce,
// and uneven computation — runs on a 64-processor torus (virtualization
// ratio 4). The runtime measures rank loads and communication, then
// migrates ranks with the topology-aware pipeline, exactly how the paper
// makes its strategies "available to many applications written using
// Charm++ as well as MPI".
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	const ranks = 256
	world, err := topomap.NewMPIWorld(ranks)
	if err != nil {
		log.Fatal(err)
	}
	// A 16x16 halo exchange with 100 KB faces, an 8-byte allreduce
	// (convergence check), and computation that is heavier in the domain
	// center — the load imbalance that motivates migratable ranks.
	world.Cart2D(16, 16, 1e5)
	world.Barrier()
	for r := 0; r < ranks; r++ {
		x, y := r/16, r%16
		dist := abs(x-8) + abs(y-8)
		world.Compute(r, 20e-6+float64(16-dist)*2e-6)
	}

	torus, err := topomap.NewTorus(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	job, err := world.Launch(topomap.DefaultMachine(torus))
	if err != nil {
		log.Fatal(err)
	}

	before, err := job.Run(25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d ranks on %d processors (virtualization ratio %d)\n",
		ranks, torus.Nodes(), ranks/torus.Nodes())
	fmt.Printf("block placement:      %6.2f ms/iter, %.2f avg hops\n",
		before.IterationTime*1e3, before.AvgHops)

	migrated, err := job.Rebalance(nil, nil) // multilevel + TopoLB+Refine
	if err != nil {
		log.Fatal(err)
	}
	after, err := job.Run(25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after migrating %d ranks: %6.2f ms/iter, %.2f avg hops (%.0f%% faster)\n",
		migrated, after.IterationTime*1e3, after.AvgHops,
		100*(1-after.IterationTime/before.IterationTime))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
