// MDJacobi writes the paper's benchmark as an actual message-driven chare
// program (the Charm++ §1 execution model): each chare is a callback that
// reacts to neighbor messages, computes, and sends — no global barriers.
// The same program runs under a TopoLB placement and a random placement,
// and the virtual-time difference is entirely due to network contention.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

const (
	side     = 8 // 8x8 chares on a (4,4,4) torus
	iters    = 200
	msgBytes = 4096
	compute  = 20e-6
)

func neighbors(v int) []int {
	x, y := v/side, v%side
	var out []int
	if x > 0 {
		out = append(out, v-side)
	}
	if x < side-1 {
		out = append(out, v+side)
	}
	if y > 0 {
		out = append(out, v-1)
	}
	if y < side-1 {
		out = append(out, v+1)
	}
	return out
}

// run executes the message-driven Jacobi under a placement and returns
// the virtual completion time.
func run(placement []int, machine topomap.Router) float64 {
	n := side * side
	iter := make([]int, n)
	recv := make([][]int, n)
	for i := range recv {
		recv[i] = make([]int, iters+1)
	}
	entries := make([]topomap.ChareEntry, n)
	for v := 0; v < n; v++ {
		entries[v] = func(ctx *topomap.ChareCtx, m topomap.ChareMsg) {
			me := ctx.Chare()
			if m.Data != nil {
				recv[me][m.Data.(int)]++
			}
			for iter[me] < iters {
				k := iter[me]
				if k > 0 && recv[me][k-1] < len(neighbors(me)) {
					return // wait for the missing halo messages
				}
				ctx.Compute(compute)
				for _, u := range neighbors(me) {
					ctx.Send(u, msgBytes, k)
				}
				iter[me]++
			}
		}
	}
	ex, err := topomap.NewChareExec(entries, placement, topomap.SimConfig{
		Topology:      machine,
		LinkBandwidth: 1e8, // constrained: contention matters
		LinkLatency:   100e-9,
		PacketSize:    1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if err := ex.Inject(v, 1, nil); err != nil {
			log.Fatal(err)
		}
	}
	return ex.Run()
}

func main() {
	tasks := topomap.Mesh2DPattern(side, side, msgBytes)
	machine, err := topomap.NewTorus(4, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	mTopo, err := topomap.TopoLB{}.Map(tasks, machine)
	if err != nil {
		log.Fatal(err)
	}
	mRand, err := (topomap.Random{Seed: 7}).Map(tasks, machine)
	if err != nil {
		log.Fatal(err)
	}
	tTopo := run(mTopo, machine)
	tRand := run(mRand, machine)
	fmt.Printf("message-driven 2D Jacobi, %d iterations, %d chares on %s\n",
		iters, side*side, machine.Name())
	fmt.Printf("  TopoLB placement: %7.2f ms  (hops/byte %.2f)\n",
		tTopo*1e3, topomap.HopsPerByte(tasks, machine, mTopo))
	fmt.Printf("  random placement: %7.2f ms  (hops/byte %.2f)\n",
		tRand*1e3, topomap.HopsPerByte(tasks, machine, mRand))
	fmt.Printf("  slowdown from contention alone: %.2fx\n", tRand/tTopo)
}
