// Quickstart: map a 16×16 Jacobi communication pattern onto a 256-node 2D
// torus and compare the hop-bytes of topology-aware and random mappings.
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	// 256 tasks in a 2D nearest-neighbor pattern, 1 MiB per edge per
	// iteration — the communication structure of a Jacobi relaxation.
	tasks := topomap.Mesh2DPattern(16, 16, 1<<20)

	// A 256-processor 2D torus, like a slice of a BlueGene-class machine.
	machine, err := topomap.NewTorus(16, 16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine %s, %d tasks\n", machine.Name(), tasks.NumVertices())
	fmt.Printf("expected hops/byte for random placement: %.2f\n\n",
		topomap.ExpectedRandomHopsPerByte(machine))

	for _, strategy := range []topomap.Strategy{
		topomap.TopoLB{},
		topomap.TopoCentLB{},
		topomap.Random{Seed: 42},
	} {
		m, err := strategy.Map(tasks, machine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s hops/byte = %.3f\n", strategy.Name(),
			topomap.HopsPerByte(tasks, machine, m))
	}
	// TopoLB finds the isomorphism: every message travels exactly one hop.
}
