// LeanMD demonstrates the full measurement-based load-balancing pipeline
// on a molecular-dynamics workload with far more chares than processors
// (virtualization), mirroring §5.2.3:
//
//  1. run the app instrumented under the default block placement,
//  2. dump the load-balancing database (+LBDump),
//  3. evaluate strategies offline on the dump (+LBSim),
//  4. migrate chares with the winner and measure the improvement.
package main

import (
	"fmt"
	"log"

	topomap "repro"
	"repro/internal/partition"
)

func main() {
	const p = 64 // processors; chares = 3240 + p
	tasks := topomap.LeanMD(p, 1e4, 1)
	torus, err := topomap.NewTorus(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	machine := topomap.DefaultMachine(torus)
	rt, err := topomap.NewRuntime(topomap.GraphApp{G: tasks}, machine)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LeanMD: %d chares on %d processors (virtualization ratio %.0f)\n",
		tasks.NumVertices(), p, float64(tasks.NumVertices())/p)

	before, err := rt.Run(20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block placement: %.2f ms per iteration (%.3f avg hops)\n",
		before.IterationTime*1e3, before.AvgHops)

	db, err := rt.Database()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n+LBSim on the dumped database (%d comm records):\n", tasks.NumEdges())
	part := partition.Multilevel{Seed: 1}
	for _, s := range []topomap.Strategy{
		topomap.TopoLB{},
		topomap.RefineTopoLB{Base: topomap.TopoLB{}},
		topomap.TopoCentLB{},
		topomap.Random{Seed: 3},
	} {
		rep, err := topomap.SimulateLBStep(db, torus, part, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s hops/byte %.3f  imbalance %.3f  migrations %d\n",
			rep.Strategy, rep.HopsPerByte, rep.Imbalance, rep.Migrations)
	}

	migrated, err := rt.Balance(part, topomap.RefineTopoLB{Base: topomap.TopoLB{}})
	if err != nil {
		log.Fatal(err)
	}
	after, err := rt.Run(20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbalanced with TopoLB+Refine: migrated %d chares\n", migrated)
	fmt.Printf("after: %.2f ms per iteration (%.3f avg hops) — %.0f%% faster\n",
		after.IterationTime*1e3, after.AvgHops,
		100*(1-after.IterationTime/before.IterationTime))
}
