// Jacobi2D reproduces the paper's main benchmark end-to-end: a 2D
// Jacobi-like program on a 3D-torus machine, first measured by hop-bytes,
// then replayed through the discrete-event network simulator across a
// bandwidth sweep to show how the better mapping tolerates contention
// (the paper's Figures 7–9 methodology).
package main

import (
	"fmt"
	"log"

	topomap "repro"
)

func main() {
	const (
		side     = 8    // 8x8 = 64 chares
		msgBytes = 4096 // 4 KB per neighbor per iteration
		iters    = 500
	)
	tasks := topomap.Mesh2DPattern(side, side, msgBytes)
	machine, err := topomap.NewTorus(4, 4, 4) // 64-node 3D torus
	if err != nil {
		log.Fatal(err)
	}

	strategies := []topomap.Strategy{
		topomap.TopoLB{},
		topomap.TopoCentLB{},
		topomap.Random{Seed: 7}, // GreedyLB-style placement
	}
	mappings := make([]topomap.Mapping, len(strategies))
	fmt.Println("phase 1: mapping quality (hops/byte)")
	for i, s := range strategies {
		m, err := s.Map(tasks, machine)
		if err != nil {
			log.Fatal(err)
		}
		mappings[i] = m
		fmt.Printf("  %-12s %.3f\n", s.Name(), topomap.HopsPerByte(tasks, machine, m))
	}

	prog, err := topomap.NewTrace(tasks, iters, 20e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase 2: %d iterations through the network simulator\n", iters)
	fmt.Printf("%14s  %12s  %12s  %12s\n", "bandwidth", strategies[0].Name(), strategies[1].Name(), strategies[2].Name())
	for _, bw := range []float64{1e8, 2e8, 5e8, 1e9} {
		fmt.Printf("%10.0f MB/s", bw/1e6)
		for i := range strategies {
			res, err := topomap.ReplayTrace(prog, mappings[i], topomap.SimConfig{
				Topology:      machine,
				LinkBandwidth: bw,
				LinkLatency:   100e-9,
				PacketSize:    1024,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %9.2f ms", res.CompletionTime*1e3)
		}
		fmt.Println()
	}
	fmt.Println("\nlower bandwidth hurts the random mapping most: its messages")
	fmt.Println("cross more links, so per-link load — and queueing — is higher.")
}
